// The linearizability checker itself, validated on hand-built histories
// with known answers (so a checker bug can't silently bless the deques).
#include <gtest/gtest.h>

#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::verify;

Operation push_right(std::uint64_t v, bool ok, std::uint64_t inv,
                     std::uint64_t res) {
  Operation op;
  op.type = OpType::kPushRight;
  op.arg = v;
  op.push_ok = ok;
  op.invoke_seq = inv;
  op.response_seq = res;
  return op;
}

Operation push_left(std::uint64_t v, bool ok, std::uint64_t inv,
                    std::uint64_t res) {
  Operation op;
  op.type = OpType::kPushLeft;
  op.arg = v;
  op.push_ok = ok;
  op.invoke_seq = inv;
  op.response_seq = res;
  return op;
}

Operation pop_right(bool has, std::uint64_t v, std::uint64_t inv,
                    std::uint64_t res) {
  Operation op;
  op.type = OpType::kPopRight;
  op.pop_has_value = has;
  op.pop_value = v;
  op.invoke_seq = inv;
  op.response_seq = res;
  return op;
}

Operation pop_left(bool has, std::uint64_t v, std::uint64_t inv,
                   std::uint64_t res) {
  Operation op;
  op.type = OpType::kPopLeft;
  op.pop_has_value = has;
  op.pop_value = v;
  op.invoke_seq = inv;
  op.response_seq = res;
  return op;
}

TEST(Checker, EmptyHistoryIsLinearizable) {
  History h;
  EXPECT_TRUE(check_linearizable(h, 8).ok());
}

TEST(Checker, SequentialLegalHistory) {
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(pop_right(true, 1, 2, 3));
  h.ops.push_back(pop_right(false, 0, 4, 5));
  const CheckResult r = check_linearizable(h, 8);
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.witness.size(), 3u);
  EXPECT_EQ(r.witness[0], 0u);  // the only legal order is program order
  EXPECT_EQ(r.witness[1], 1u);
  EXPECT_EQ(r.witness[2], 2u);
}

TEST(Checker, SequentialIllegalValue) {
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(pop_right(true, 99, 2, 3));  // wrong value
  EXPECT_EQ(check_linearizable(h, 8).verdict, Verdict::kNotLinearizable);
}

TEST(Checker, PopFromEmptyBeforePushIsIllegalSequentially) {
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(pop_right(false, 0, 2, 3));  // "empty" after a push
  EXPECT_EQ(check_linearizable(h, 8).verdict, Verdict::kNotLinearizable);
}

TEST(Checker, ConcurrentPopMayLinearizeBeforePush) {
  // pop overlaps the push, so pop -> "empty" is legal.
  History h;
  h.ops.push_back(push_right(1, true, 0, 3));
  h.ops.push_back(pop_right(false, 0, 1, 2));
  EXPECT_TRUE(check_linearizable(h, 8).ok());
  // Residue check: a later sequential pop must find the pushed value.
  h.ops.push_back(pop_right(true, 1, 4, 5));
  EXPECT_TRUE(check_linearizable(h, 8).ok());
}

TEST(Checker, RealTimeOrderIsRespected) {
  // Same ops, but now the pop strictly follows the push: "empty" illegal.
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(pop_right(false, 0, 2, 3));
  h.ops.push_back(pop_right(true, 1, 4, 5));
  EXPECT_EQ(check_linearizable(h, 8).verdict, Verdict::kNotLinearizable);
}

TEST(Checker, DuplicatedPopIsCaught) {
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(pop_right(true, 1, 2, 5));
  h.ops.push_back(pop_left(true, 1, 3, 6));  // same value popped twice
  EXPECT_EQ(check_linearizable(h, 8).verdict, Verdict::kNotLinearizable);
}

TEST(Checker, DequeOrderMatters) {
  // <1 2> pushed right; popLeft must see 1 first.
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(push_right(2, true, 2, 3));
  h.ops.push_back(pop_left(true, 2, 4, 5));  // wrong end order
  EXPECT_EQ(check_linearizable(h, 8).verdict, Verdict::kNotLinearizable);
}

TEST(Checker, StackAndQueueBehaviourBothLegal) {
  {
    History h;  // LIFO via right end
    h.ops.push_back(push_right(1, true, 0, 1));
    h.ops.push_back(push_right(2, true, 2, 3));
    h.ops.push_back(pop_right(true, 2, 4, 5));
    h.ops.push_back(pop_right(true, 1, 6, 7));
    EXPECT_TRUE(check_linearizable(h, 8).ok());
  }
  {
    History h;  // FIFO across ends
    h.ops.push_back(push_right(1, true, 0, 1));
    h.ops.push_back(push_right(2, true, 2, 3));
    h.ops.push_back(pop_left(true, 1, 4, 5));
    h.ops.push_back(pop_left(true, 2, 6, 7));
    EXPECT_TRUE(check_linearizable(h, 8).ok());
  }
}

TEST(Checker, FullSemanticsRespectCapacity) {
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(push_right(2, false, 2, 3));  // full at capacity 1
  EXPECT_TRUE(check_linearizable(h, 1).ok());
  EXPECT_EQ(check_linearizable(h, 2).verdict, Verdict::kNotLinearizable);
}

TEST(Checker, ConcurrentFullMayLinearizeEitherWay) {
  // Capacity 1; push(2) overlaps pop that empties the deque: both
  // "okay" and "full" outcomes would be legal; we recorded "okay".
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(pop_right(true, 1, 2, 5));
  h.ops.push_back(push_right(2, true, 3, 4));  // fits if pop went first
  h.ops.push_back(pop_left(true, 2, 6, 7));
  EXPECT_TRUE(check_linearizable(h, 1).ok());
}

TEST(Checker, ThreeWayRaceWithUniqueWitness) {
  // Two concurrent pops race for one element; exactly one may win.
  History h;
  h.ops.push_back(push_right(7, true, 0, 1));
  h.ops.push_back(pop_right(true, 7, 2, 5));
  h.ops.push_back(pop_left(false, 0, 3, 4));
  EXPECT_TRUE(check_linearizable(h, 8).ok());

  History bad = h;
  bad.ops[2].pop_has_value = true;  // both claim the element
  bad.ops[2].pop_value = 7;
  EXPECT_EQ(check_linearizable(bad, 8).verdict, Verdict::kNotLinearizable);
}

TEST(Checker, StateLimitProducesLimitVerdict) {
  History h;
  for (int i = 0; i < 12; ++i) {
    h.ops.push_back(push_right(i, true, 0, 100));  // all fully concurrent
  }
  const CheckResult r = check_linearizable(h, 64, /*state_limit=*/3);
  EXPECT_EQ(r.verdict, Verdict::kLimitExceeded);
}

TEST(Checker, LimitVerdictNeverLeaksAWitness) {
  // The witness contract: non-empty means "complete, replayable
  // linearization". A budget-exhausted search must not leave its abandoned
  // DFS prefix there — that prefix goes to partial_witness, explicitly
  // marked diagnostic.
  History h;
  for (int i = 0; i < 12; ++i) {
    h.ops.push_back(push_right(i, true, 0, 100));
  }
  const CheckResult r = check_linearizable(h, 64, /*state_limit=*/3);
  ASSERT_EQ(r.verdict, Verdict::kLimitExceeded);
  EXPECT_TRUE(r.witness.empty());
  EXPECT_FALSE(r.partial_witness.empty());
  EXPECT_LT(r.partial_witness.size(), h.ops.size());
  EXPECT_NE(r.message.find("partial linearization prefix"),
            std::string::npos)
      << r.message;

  // The partial prefix must itself be a legal linearization prefix:
  // distinct indices that replay consistently against the spec.
  SpecDeque spec(64);
  std::vector<bool> seen(h.ops.size(), false);
  for (const std::size_t idx : r.partial_witness) {
    ASSERT_LT(idx, h.ops.size());
    EXPECT_FALSE(seen[idx]) << "duplicate index in partial witness";
    seen[idx] = true;
    EXPECT_TRUE(apply_if_consistent(spec, h.ops[idx]));
  }
}

TEST(Checker, LinearizableVerdictLeavesPartialWitnessEmpty) {
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));
  h.ops.push_back(pop_right(true, 1, 2, 3));
  const CheckResult r = check_linearizable(h, 8);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.witness.empty());
  EXPECT_TRUE(r.partial_witness.empty());
}

TEST(Checker, GenerousBudgetResolvesTheSameHistory) {
  // The same all-concurrent history that exhausts a 3-state budget
  // resolves under the default budget — kLimitExceeded really was a
  // budget artifact, not a verdict.
  History h;
  for (int i = 0; i < 12; ++i) {
    h.ops.push_back(push_right(i, true, 0, 100));
  }
  const CheckResult r = check_linearizable(h, 64);
  EXPECT_EQ(r.verdict, Verdict::kLinearizable);
  EXPECT_GT(r.states_explored, 3u);
}

TEST(Checker, WitnessReplaysToSameOutcomes) {
  History h;
  h.ops.push_back(push_right(1, true, 0, 9));
  h.ops.push_back(pop_left(true, 1, 1, 8));
  h.ops.push_back(push_right(2, true, 2, 7));
  h.ops.push_back(pop_right(true, 2, 3, 6));
  const CheckResult r = check_linearizable(h, 8);
  ASSERT_TRUE(r.ok());
  SpecDeque spec(8);
  for (const std::size_t idx : r.witness) {
    ASSERT_TRUE(apply_if_consistent(spec, h.ops[idx]));
  }
  EXPECT_TRUE(spec.empty());
}

TEST(Checker, WitnessIsAPermutationAndReproducesEveryOutcome) {
  // A richer concurrent history with full/empty outcomes: the witness
  // must visit every op exactly once, and replaying it op by op must
  // reproduce each *recorded* outcome against a fresh SpecDeque —
  // apply_if_consistent rejects on any mismatch (push_ok, pop value, or
  // pop emptiness), so a single ASSERT covers all three.
  History h;
  h.ops.push_back(push_right(1, true, 0, 1));    // sequential prefix
  h.ops.push_back(push_left(7, true, 2, 3));
  h.ops.push_back(pop_right(true, 1, 4, 9));     // three overlapping ops
  h.ops.push_back(pop_right(true, 7, 5, 8));
  h.ops.push_back(pop_left(false, 0, 6, 7));     // loser sees empty
  const CheckResult r = check_linearizable(h, 2);
  ASSERT_TRUE(r.ok()) << r.message;
  ASSERT_EQ(r.witness.size(), h.ops.size());
  std::vector<bool> seen(h.ops.size(), false);
  SpecDeque spec(2);
  for (const std::size_t idx : r.witness) {
    ASSERT_LT(idx, h.ops.size());
    EXPECT_FALSE(seen[idx]) << "witness visits op " << idx << " twice";
    seen[idx] = true;
    ASSERT_TRUE(apply_if_consistent(spec, h.ops[idx]))
        << "witness order does not reproduce op " << idx << "'s outcome";
  }
  EXPECT_TRUE(spec.empty());
}

}  // namespace
