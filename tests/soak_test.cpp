// Long-running soaks, excluded from the default run (DISABLED_ prefix).
// Run explicitly with:
//   ./build/tests/soak_test --gtest_also_run_disabled_tests
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::deque;
using namespace dcd::verify;
using dcd::dcas::McasDcas;

TEST(SoakTest, DISABLED_ArrayLinearizabilityMarathon) {
  // Thousands of small recorded windows; any seed that fails is printed.
  for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
    ArrayDeque<std::uint64_t, McasDcas> d(2);
    WorkloadConfig cfg;
    cfg.threads = 3;
    cfg.ops_per_thread = 8;
    cfg.seed = seed;
    const History h = run_recorded(d, cfg);
    const CheckResult res = check_linearizable(h, 2);
    ASSERT_EQ(res.verdict, Verdict::kLinearizable)
        << "seed " << seed << ": " << res.message;
  }
}

TEST(SoakTest, DISABLED_ListLinearizabilityMarathon) {
  for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
    ListDeque<std::uint64_t, McasDcas> d(1 << 12);
    WorkloadConfig cfg;
    cfg.threads = 3;
    cfg.ops_per_thread = 8;
    cfg.seed = seed;
    cfg.pop_right = 2;
    cfg.pop_left = 2;
    const History h = run_recorded(d, cfg);
    const CheckResult res = check_linearizable(h, SpecDeque::kUnbounded);
    ASSERT_EQ(res.verdict, Verdict::kLinearizable)
        << "seed " << seed << ": " << res.message;
  }
}

TEST(SoakTest, DISABLED_ListReclamationEndurance) {
  // 10M ops through a small pool: any leak or double-free surfaces as
  // allocation failure or corruption long before the end.
  ListDeque<std::uint64_t, McasDcas> d(1 << 12);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIters = 2'500'000;
  std::atomic<std::uint64_t> fulls{0};
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kIters; ++i) {
        if (d.push_right((static_cast<std::uint64_t>(t) << 32) | i) ==
            PushResult::kFull) {
          fulls.fetch_add(1);
          d.reclaimer().collect();
        }
        (void)(t % 2 == 0 ? d.pop_left() : d.pop_right());
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_TRUE(d.check_rep_inv_unsynchronized());
}

}  // namespace
