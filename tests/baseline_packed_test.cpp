// PackedEndsDeque (the §1.1 Greenwald-style comparator): full deque
// semantics despite the single packed index word.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/baseline/packed_ends_deque.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::baseline;
using dcd::deque::PushResult;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;

template <typename P>
class PackedEndsTest : public ::testing::Test {
 protected:
  using Deque = PackedEndsDeque<std::uint64_t, P>;
};

using Policies = ::testing::Types<GlobalLockDcas, McasDcas>;
TYPED_TEST_SUITE(PackedEndsTest, Policies);

TYPED_TEST(PackedEndsTest, PaperExampleTrace) {
  typename TestFixture::Deque d(8);
  EXPECT_EQ(d.push_right(1), PushResult::kOkay);
  EXPECT_EQ(d.push_left(2), PushResult::kOkay);
  EXPECT_EQ(d.push_right(3), PushResult::kOkay);
  EXPECT_EQ(d.pop_left(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_FALSE(d.pop_left().has_value());
}

TYPED_TEST(PackedEndsTest, BoundariesAndWrap) {
  typename TestFixture::Deque d(3);
  EXPECT_FALSE(d.pop_right().has_value());
  ASSERT_EQ(d.push_right(1), PushResult::kOkay);
  ASSERT_EQ(d.push_left(2), PushResult::kOkay);
  ASSERT_EQ(d.push_right(3), PushResult::kOkay);
  EXPECT_EQ(d.push_right(4), PushResult::kFull);
  EXPECT_EQ(d.push_left(4), PushResult::kFull);
  EXPECT_EQ(d.pop_left(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_FALSE(d.pop_left().has_value());
  // Drift around the ring repeatedly.
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_EQ(d.push_left(i), PushResult::kOkay);
    ASSERT_EQ(d.pop_right(), i);
  }
}

TYPED_TEST(PackedEndsTest, CapacityOne) {
  typename TestFixture::Deque d(1);
  EXPECT_EQ(d.push_right(5), PushResult::kOkay);
  EXPECT_EQ(d.push_left(6), PushResult::kFull);
  EXPECT_EQ(d.pop_left(), 5u);
  EXPECT_FALSE(d.pop_right().has_value());
}

TYPED_TEST(PackedEndsTest, ConservationUnderConcurrency) {
  typename TestFixture::Deque d(64);
  dcd::verify::WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 3000;
  cfg.seed = 13;
  const std::int64_t net = dcd::verify::run_unrecorded(d, cfg);
  ASSERT_GE(net, 0);
  EXPECT_EQ(d.size_unsynchronized(), static_cast<std::size_t>(net));
}

TYPED_TEST(PackedEndsTest, LinearizableHistories) {
  for (int round = 0; round < 30; ++round) {
    typename TestFixture::Deque d(2);
    dcd::verify::WorkloadConfig cfg;
    cfg.threads = 3;
    cfg.ops_per_thread = 9;
    cfg.seed = 900 + round * 104729;
    const auto h = dcd::verify::run_recorded(d, cfg);
    const auto res = dcd::verify::check_linearizable(h, 2);
    ASSERT_EQ(res.verdict, dcd::verify::Verdict::kLinearizable)
        << "round " << round << ": " << res.message;
  }
}

}  // namespace
