// ListDeque under ChaosDcas: the paper's §5.2 adversarial schedules made
// deterministic — a popper suspended between its logical and physical
// delete (the lock-freedom smoke), and the Figure 16 two-null-node race.
#include <gtest/gtest.h>

#include <thread>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/verify/driver.hpp"

namespace {

using namespace dcd;
using dcas::ChaosController;
using dcas::ChaosDcas;
using dcas::ChaosSchedule;
using dcas::DcasShape;

template <typename P>
class ChaosListTest : public ::testing::Test {
 protected:
  // Pool sized so the parked popper's pinned EBR epoch (nothing reclaims
  // while it sleeps) cannot exhaust allocation during the smoke's windows.
  using Deque = deque::ListDeque<std::uint64_t, ChaosDcas<P>>;
};

using Inners = ::testing::Types<dcas::GlobalLockDcas, dcas::StripedLockDcas,
                                dcas::McasDcas>;
TYPED_TEST_SUITE(ChaosListTest, Inners);

ChaosSchedule quiet_schedule(std::uint64_t seed = 1) {
  ChaosSchedule s;
  s.seed = seed;
  return s;  // all fault probabilities zero: park rules only
}

// The acceptance smoke: one worker parked right after its pop's logical
// delete; the remaining workers must keep completing ops (lock-freedom),
// every recorded window must linearize, and the popper must come back with
// the value it claimed. DCD_CHAOS_SEED replays a failing schedule.
TYPED_TEST(ChaosListTest, ParkedPopperSmoke) {
  typename TestFixture::Deque d(1 << 16);
  ChaosController chaos(
      ChaosSchedule::from_seed(dcas::chaos_seed_from_env(2026)));
  SCOPED_TRACE(chaos.schedule().describe());

  verify::ChaosSmokeConfig cfg;
  cfg.park_point = dcas::sync_point::kLogicalDelete;
  cfg.popper_op = verify::OpType::kPopRight;
  cfg.seed = chaos.schedule().seed;
  cfg.capacity = verify::SpecDeque::kUnbounded;
  // The full 10k-op bound runs under the lock-free policy below; typed
  // variants keep CI latency sane while still crossing many windows.
  cfg.min_total_ops = 2000;

  const verify::ChaosSmokeReport rep = verify::run_parked_popper_smoke(
      d, chaos, cfg);
  EXPECT_TRUE(rep.ok) << rep.message;
  EXPECT_TRUE(rep.popper_parked_throughout);
  EXPECT_TRUE(rep.popper_resumed);
  EXPECT_GE(rep.worker_ops, cfg.min_total_ops);
  EXPECT_TRUE(d.check_rep_inv_unsynchronized());
}

TEST(ChaosListLockFree, ParkedPopperSmokeTenThousandOps) {
  // ISSUE acceptance: >= 10k completed ops while the popper stays parked,
  // under the lock-free DCAS emulation.
  deque::ListDeque<std::uint64_t, ChaosDcas<dcas::McasDcas>> d(1 << 16);
  ChaosController chaos(
      ChaosSchedule::from_seed(dcas::chaos_seed_from_env(2026)));
  SCOPED_TRACE(chaos.schedule().describe());

  verify::ChaosSmokeConfig cfg;
  cfg.park_point = dcas::sync_point::kLogicalDelete;
  cfg.seed = chaos.schedule().seed;
  cfg.capacity = verify::SpecDeque::kUnbounded;
  cfg.min_total_ops = 10'000;

  const verify::ChaosSmokeReport rep = verify::run_parked_popper_smoke(
      d, chaos, cfg);
  EXPECT_TRUE(rep.ok) << rep.message;
  EXPECT_TRUE(rep.popper_parked_throughout);
  EXPECT_GE(rep.worker_ops, 10'000u);
  EXPECT_TRUE(d.check_rep_inv_unsynchronized());
}

TEST(ChaosListLockFree, SameSeedSameSchedule) {
  // The --chaos-seed replay contract: the seed alone reproduces the
  // schedule (parameters and description identical across runs).
  const std::uint64_t seed = dcas::chaos_seed_from_env(2026);
  EXPECT_EQ(ChaosSchedule::from_seed(seed).describe(),
            ChaosSchedule::from_seed(seed).describe());
}

// Figure 16: both sentinels point at logically deleted nodes; a
// delete_right and a delete_left race their two-null-splice DCASes over
// the same sentinel words. Exactly one may win. The chaos layer parks the
// first two threads to reach the splice, staging the race deterministically
// instead of hoping a stress run hits it.
TYPED_TEST(ChaosListTest, Figure16TwoNullSpliceHasOneWinner) {
  typename TestFixture::Deque d(64);
  ChaosController chaos(quiet_schedule());

  ASSERT_EQ(d.push_right(1), deque::PushResult::kOkay);
  ASSERT_EQ(d.push_right(2), deque::PushResult::kOkay);
  // Logically delete from both ends; physical deletes are deferred to the
  // next operation that trips over the deleted bits.
  ASSERT_EQ(d.pop_right(), 2u);
  ASSERT_EQ(d.pop_left(), 1u);
  ASSERT_TRUE(d.right_deleted_bit_unsynchronized());
  ASSERT_TRUE(d.left_deleted_bit_unsynchronized());

  // Two rules on the same point: the first thread to reach the splice
  // parks at r1 before ever touching r2's hit counter, so the second
  // thread parks at r2 (whichever thread arrives first).
  const std::size_t r1 = chaos.arm_park(dcas::sync_point::kTwoNullSplice, 1);
  const std::size_t r2 = chaos.arm_park(dcas::sync_point::kTwoNullSplice, 1);

  std::optional<std::uint64_t> got_a, got_b;
  std::thread a([&] { got_a = d.pop_right(); });  // helps via delete_right
  std::thread b([&] { got_b = d.pop_left(); });   // helps via delete_left
  ASSERT_TRUE(chaos.wait_parked(r1, 5000));
  ASSERT_TRUE(chaos.wait_parked(r2, 5000));
  // Both splice DCASes are staged on the same two sentinel words.
  ASSERT_EQ(chaos.attempts(DcasShape::kTwoNullSplice), 2u);
  ASSERT_EQ(chaos.successes(DcasShape::kTwoNullSplice), 0u);

  chaos.release_all();
  a.join();
  b.join();

  // Exactly one splice won; the loser saw the cleared deleted bit and
  // retreated. Both pops then found the deque empty.
  EXPECT_EQ(chaos.successes(DcasShape::kTwoNullSplice), 1u);
  EXPECT_FALSE(got_a.has_value());
  EXPECT_FALSE(got_b.has_value());
  EXPECT_FALSE(d.right_deleted_bit_unsynchronized());
  EXPECT_FALSE(d.left_deleted_bit_unsynchronized());
  EXPECT_EQ(d.size_unsynchronized(), 0u);
  EXPECT_EQ(d.chain_length_unsynchronized(), 0u);
  EXPECT_TRUE(d.check_rep_inv_unsynchronized());

  // The deque is fully usable afterwards.
  ASSERT_EQ(d.push_left(7), deque::PushResult::kOkay);
  EXPECT_EQ(d.pop_right(), 7u);
}

}  // namespace
