// Clause-by-clause tests for verify::RepAuditor over synthetic rep views.
//
// Each §5 invariant clause gets a healthy view, a view corrupted in exactly
// the way the clause forbids, and a check that the clause name lands in the
// failure detail — the model checker's counterexamples quote these names,
// so they are part of the tool's interface.
#include <gtest/gtest.h>

#include <string>

#include "dcd/dcas/word.hpp"
#include "dcd/deque/types.hpp"
#include "dcd/verify/rep_auditor.hpp"

namespace {

using dcd::deque::ArrayRepView;
using dcd::deque::ListRepView;
using dcd::verify::AuditResult;
using dcd::verify::RepAuditor;

std::uint64_t val(std::uint64_t payload) {
  return dcd::dcas::encode_payload(payload);
}

// Array view with the occupied segment cyclically (l, r) exclusive.
ArrayRepView array_view(std::size_t n, std::size_t l, std::size_t r) {
  ArrayRepView v;
  v.n = n;
  v.l = l;
  v.r = r;
  v.cell_null.assign(n, true);
  v.cells.assign(n, dcd::dcas::kNull);
  if (r != (l + 1) % n) {
    for (std::size_t i = (l + 1) % n; i != r; i = (i + 1) % n) {
      v.cell_null[i] = false;
      v.cells[i] = val(40 + i);
    }
  }
  return v;
}

ListRepView list_view(std::initializer_list<std::uint64_t> payloads) {
  ListRepView v;
  v.sentinel_values_ok = true;
  v.reachable = true;
  v.backlinks_ok = true;
  for (const std::uint64_t p : payloads) v.values.push_back(val(p));
  return v;
}

// --- array clauses ---------------------------------------------------------

TEST(RepAuditorArray, HealthyViewsPass) {
  EXPECT_TRUE(RepAuditor::audit_array(array_view(4, 0, 3)).ok);
  EXPECT_TRUE(RepAuditor::audit_array(array_view(4, 3, 2)).ok);  // wrapped
  EXPECT_TRUE(RepAuditor::audit_array(array_view(2, 0, 1)).ok);  // empty
  EXPECT_TRUE(RepAuditor::audit_array(array_view(1, 0, 0)).ok);
}

TEST(RepAuditorArray, MalformedView) {
  ArrayRepView v;  // n == 0
  const AuditResult r = RepAuditor::audit_array(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("array.view_malformed"), std::string::npos);

  ArrayRepView w = array_view(4, 0, 2);
  w.cell_null.pop_back();
  EXPECT_FALSE(RepAuditor::audit_array(w).ok);
}

TEST(RepAuditorArray, IndexRange) {
  ArrayRepView v = array_view(4, 0, 2);
  v.r = 9;
  const AuditResult r = RepAuditor::audit_array(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("array.index_range"), std::string::npos);
}

TEST(RepAuditorArray, AmbiguousBoundaryNeedsAllOrNothing) {
  // (L+1) mod N == R with a *mixed* array: neither empty nor full, which
  // the §3 disambiguation-by-contents rule forbids.
  ArrayRepView v = array_view(4, 0, 1);
  v.cell_null[2] = false;
  v.cells[2] = val(9);
  const AuditResult r = RepAuditor::audit_array(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("array.ambiguous_boundary"), std::string::npos);

  // All-null (empty) and all-non-null (full) both pass.
  EXPECT_TRUE(RepAuditor::audit_array(array_view(4, 0, 1)).ok);
  ArrayRepView full = array_view(4, 0, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    full.cell_null[i] = false;
    full.cells[i] = val(i);
  }
  EXPECT_TRUE(RepAuditor::audit_array(full).ok);
}

TEST(RepAuditorArray, HoleInOccupiedSegment) {
  ArrayRepView v = array_view(4, 0, 3);  // occupied: 1, 2
  v.cell_null[1] = true;
  v.cells[1] = dcd::dcas::kNull;
  const AuditResult r = RepAuditor::audit_array(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("array.segment_full[1]"), std::string::npos);
}

TEST(RepAuditorArray, StrayValueInNullSegment) {
  // The kPopKeepsValue mutation's exact signature: index moved, cell kept.
  ArrayRepView v = array_view(4, 0, 2);  // null segment: 2, 3, 0
  v.cell_null[3] = false;
  v.cells[3] = val(77);
  const AuditResult r = RepAuditor::audit_array(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("array.segment_null[3]"), std::string::npos);
}

TEST(RepAuditorArray, MultipleFailuresAllReported) {
  ArrayRepView v = array_view(4, 0, 3);
  v.cell_null[1] = true;   // hole
  v.cell_null[3] = false;  // stray
  v.cells[3] = val(5);
  const AuditResult r = RepAuditor::audit_array(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("array.segment_full[1]"), std::string::npos);
  EXPECT_NE(r.detail.find("array.segment_null[3]"), std::string::npos);
}

// --- list clauses ----------------------------------------------------------

TEST(RepAuditorList, HealthyViewsPass) {
  EXPECT_TRUE(RepAuditor::audit_list(list_view({})).ok);
  EXPECT_TRUE(RepAuditor::audit_list(list_view({1, 2, 3})).ok);

  // Logically-deleted boundary nodes: bit set, value nulled.
  ListRepView v = list_view({1, 2});
  v.left_deleted = true;
  v.values.front() = dcd::dcas::kNull;
  EXPECT_TRUE(RepAuditor::audit_list(v).ok);
  v.right_deleted = true;
  v.values.back() = dcd::dcas::kNull;
  EXPECT_TRUE(RepAuditor::audit_list(v).ok);  // the Figure 16 state
}

TEST(RepAuditorList, SentinelValuesClause) {
  ListRepView v = list_view({1});
  v.sentinel_values_ok = false;
  const AuditResult r = RepAuditor::audit_list(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("list.sentinel_values"), std::string::npos);
}

TEST(RepAuditorList, ReachabilityStopsTheAudit) {
  ListRepView v = list_view({1});
  v.reachable = false;
  v.backlinks_ok = false;  // would also fail, but must not be reported
  const AuditResult r = RepAuditor::audit_list(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("list.reachable"), std::string::npos);
  EXPECT_EQ(r.detail.find("list.backlinks"), std::string::npos);
}

TEST(RepAuditorList, BacklinksClause) {
  ListRepView v = list_view({1});
  v.backlinks_ok = false;
  EXPECT_NE(RepAuditor::audit_list(v).detail.find("list.backlinks"),
            std::string::npos);
}

TEST(RepAuditorList, InteriorDeletedClause) {
  ListRepView v = list_view({1, 2});
  v.interior_deleted = true;
  EXPECT_NE(RepAuditor::audit_list(v).detail.find("list.interior_deleted"),
            std::string::npos);
}

TEST(RepAuditorList, DeletedBitDemandsNullBoundary) {
  // Bit set but the boundary value survived: half a logical delete.
  ListRepView v = list_view({1, 2});
  v.left_deleted = true;
  const AuditResult r = RepAuditor::audit_list(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("list.deleted_target_null[left]"),
            std::string::npos);

  ListRepView w = list_view({1, 2});
  w.right_deleted = true;
  EXPECT_NE(RepAuditor::audit_list(w).detail.find(
                "list.deleted_target_null[right]"),
            std::string::npos);

  // Bit set with no node at all.
  ListRepView e = list_view({});
  e.right_deleted = true;
  EXPECT_FALSE(RepAuditor::audit_list(e).ok);
}

TEST(RepAuditorList, TwoDeletedNeedTwoNodes) {
  // Figure 16 has *two distinct* logically-deleted boundary nodes; one
  // node deleted from both sides is impossible.
  ListRepView v = list_view({0});
  v.values.front() = dcd::dcas::kNull;
  v.left_deleted = true;
  v.right_deleted = true;
  const AuditResult r = RepAuditor::audit_list(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("list.two_deleted_minimum"), std::string::npos);
}

TEST(RepAuditorList, UnlicensedNull) {
  // The kDropDeletedBit mutation's exact signature: nulled value with no
  // deleted bit licensing it.
  ListRepView v = list_view({1, 2, 3});
  v.values[1] = dcd::dcas::kNull;
  const AuditResult r = RepAuditor::audit_list(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("list.null_licensing[1]"), std::string::npos);

  // A null at the boundary is also unlicensed without the bit.
  ListRepView w = list_view({1, 2});
  w.values.front() = dcd::dcas::kNull;
  EXPECT_NE(RepAuditor::audit_list(w).detail.find("list.null_licensing[0]"),
            std::string::npos);
}

TEST(RepAuditorList, SentinelMarkerAsValue) {
  ListRepView v = list_view({1, 2});
  v.values[0] = dcd::dcas::kSentL;
  const AuditResult r = RepAuditor::audit_list(v);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.detail.find("list.value_payload[0]"), std::string::npos);
}

}  // namespace
