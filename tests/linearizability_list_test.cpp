// Theorem 4.1, checked empirically: recorded concurrent histories of the
// list deque must linearize against the *unbounded* deque spec.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/deque/list_deque.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::deque;
using namespace dcd::verify;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;
using dcd::reclaim::EbrReclaim;
using dcd::reclaim::LeakyReclaim;

template <typename P, typename R>
struct Cfg {
  using Policy = P;
  using Reclaim = R;
};

template <typename C>
class ListLinTest : public ::testing::Test {
 protected:
  using Deque =
      ListDeque<std::uint64_t, typename C::Policy, typename C::Reclaim>;

  void check_rounds(const WorkloadConfig& base, int rounds) {
    for (int r = 0; r < rounds; ++r) {
      Deque d(1 << 12);
      WorkloadConfig cfg = base;
      cfg.seed = base.seed + static_cast<std::uint64_t>(r) * 7919;
      const History h = run_recorded(d, cfg);
      const CheckResult res = check_linearizable(h, SpecDeque::kUnbounded);
      ASSERT_EQ(res.verdict, Verdict::kLinearizable)
          << "round " << r << " (seed " << cfg.seed << "): " << res.message;
    }
  }
};

using Configs = ::testing::Types<
    Cfg<GlobalLockDcas, EbrReclaim>, Cfg<StripedLockDcas, EbrReclaim>,
    Cfg<McasDcas, EbrReclaim>, Cfg<McasDcas, LeakyReclaim>>;
TYPED_TEST_SUITE(ListLinTest, Configs);

TYPED_TEST(ListLinTest, TwoThreadsBalanced) {
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 12;
  cfg.seed = 11;
  this->check_rounds(cfg, 40);
}

TYPED_TEST(ListLinTest, PopHeavyHammersDeletedStates) {
  // Keeps the deque around the Figure 9/16 configurations where logically
  // deleted nodes linger and both delete paths race.
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 10;
  cfg.seed = 22;
  cfg.push_right = 1;
  cfg.push_left = 1;
  cfg.pop_right = 4;
  cfg.pop_left = 4;
  this->check_rounds(cfg, 30);
}

TYPED_TEST(ListLinTest, ThreeThreadsMixed) {
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 9;
  cfg.seed = 33;
  this->check_rounds(cfg, 30);
}

TYPED_TEST(ListLinTest, FourThreadsShortBursts) {
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 6;
  cfg.seed = 44;
  this->check_rounds(cfg, 25);
}

}  // namespace
