// ListDeque concurrent stress: conservation, reclamation soundness, and
// sustained traffic through a bounded pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "dcd/deque/list_deque.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/verify/driver.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename P>
class ListStressTest : public ::testing::Test {
 protected:
  using Deque = ListDeque<std::uint64_t, P>;
};

using Policies = ::testing::Types<GlobalLockDcas, StripedLockDcas, McasDcas>;
TYPED_TEST_SUITE(ListStressTest, Policies);

TYPED_TEST(ListStressTest, NoLossNoDuplication) {
  constexpr int kProducers = 2;
  constexpr int kConsumers = 2;
  constexpr std::uint64_t kPerProducer = 3000;
  typename TestFixture::Deque d(1 << 15);

  std::vector<std::vector<std::uint64_t>> popped(kConsumers);
  std::atomic<int> producers_left{kProducers};
  dcd::util::SpinBarrier barrier(kProducers + kConsumers);
  std::vector<std::thread> ts;

  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        if (p % 2 == 0) {
          ASSERT_EQ(d.push_right(v), PushResult::kOkay);
        } else {
          ASSERT_EQ(d.push_left(v), PushResult::kOkay);
        }
      }
      producers_left.fetch_sub(1);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&, c] {
      barrier.arrive_and_wait();
      int dry_sweeps = 0;
      while (dry_sweeps < 2) {
        auto v = (c % 2 == 0) ? d.pop_left() : d.pop_right();
        if (v.has_value()) {
          popped[c].push_back(*v);
          dry_sweeps = 0;
        } else if (producers_left.load() == 0) {
          ++dry_sweeps;
        }
      }
    });
  }
  for (auto& t : ts) t.join();

  std::map<std::uint64_t, int> counts;
  for (auto& vec : popped) {
    for (const std::uint64_t v : vec) ++counts[v];
  }
  while (auto v = d.pop_left()) ++counts[*v];

  EXPECT_EQ(counts.size(), kProducers * kPerProducer);
  for (const auto& [v, n] : counts) {
    ASSERT_EQ(n, 1) << "value " << v << " popped " << n << " times";
  }
}

TYPED_TEST(ListStressTest, ConservationOnMixedWorkload) {
  typename TestFixture::Deque d(1 << 15);
  dcd::verify::WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 4000;
  cfg.seed = 99;
  const std::int64_t net = dcd::verify::run_unrecorded(d, cfg);
  ASSERT_GE(net, 0);
  EXPECT_EQ(d.size_unsynchronized(), static_cast<std::size_t>(net));
}

TYPED_TEST(ListStressTest, EmptyHeavyHammersDeleteRaces) {
  // Pop-dominated mix keeps the deque hovering around the Figure 9/16
  // states where the delete DCASes contend.
  typename TestFixture::Deque d(1 << 14);
  dcd::verify::WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 4000;
  cfg.seed = 1234;
  cfg.push_right = 1;
  cfg.push_left = 1;
  cfg.pop_right = 3;
  cfg.pop_left = 3;
  const std::int64_t net = dcd::verify::run_unrecorded(d, cfg);
  ASSERT_GE(net, 0);
  EXPECT_EQ(d.size_unsynchronized(), static_cast<std::size_t>(net));
}

TYPED_TEST(ListStressTest, BoundedPoolSustainsConcurrentTraffic) {
  // Nodes must cycle pool -> deque -> EBR limbo -> pool. Occasional
  // allocation failures are legitimate on an oversubscribed host (a
  // preempted thread pins its epoch for a whole timeslice, delaying
  // reclamation), so the assertion is about *recycling*, not zero failures:
  // total successful pushes must far exceed the pool capacity, which is
  // impossible without nodes returning to the free list.
  constexpr std::size_t kPoolCap = 1 << 10;
  typename TestFixture::Deque d(kPoolCap);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIters = 4000;  // 16k pushes through a 1k pool
  std::atomic<std::uint64_t> ok_pops{0};
  std::atomic<bool> stuck{false};
  std::atomic<int> finished{0};
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < kIters && !stuck.load(); ++i) {
        int tries = 0;
        while (d.push_right((static_cast<std::uint64_t>(t) << 32) | i) !=
               PushResult::kOkay) {
          // Allocation failed: give reclamation a chance and retry.
          d.reclaimer().collect();
          std::this_thread::yield();
          if (++tries > 200000) {
            stuck.store(true);
            break;
          }
        }
        if (stuck.load()) break;
        auto v = (t % 2 == 0) ? d.pop_left() : d.pop_right();
        if (v.has_value()) ok_pops.fetch_add(1);
      }
      // Stay alive and keep draining this slot's limbo until everyone is
      // done — a thread that exits strands its retired nodes until the
      // deque is destroyed, which could starve a straggler's allocations.
      finished.fetch_add(1);
      while (finished.load() < kThreads && !stuck.load()) {
        d.reclaimer().collect();
        std::this_thread::yield();
      }
    });
  }
  for (auto& t : ts) t.join();
  ASSERT_FALSE(stuck.load()) << "reclamation never freed pool nodes";
  // All kThreads * kIters pushes eventually succeeded through a pool a
  // fraction of that size, so nodes demonstrably recycled. Conservation:
  EXPECT_EQ(d.size_unsynchronized(),
            kThreads * kIters - ok_pops.load());
}

}  // namespace
