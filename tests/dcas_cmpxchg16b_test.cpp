// Hardware adjacent-word DCAS (E1's "if you had hardware" reference).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dcd/dcas/cmpxchg16b.hpp"
#include "dcd/util/barrier.hpp"

namespace {

using namespace dcd::dcas;

TEST(Cmpxchg16b, AvailabilityMatchesArchitecture) {
#if defined(__x86_64__)
  EXPECT_TRUE(Cmpxchg16bDcas::available());
#else
  EXPECT_FALSE(Cmpxchg16bDcas::available());
#endif
}

#if defined(__x86_64__)

TEST(Cmpxchg16b, TelemetryCountsOnlyExecutedHardwareOps) {
  // hw_dcas_calls is charged inside the x86 branch, so it counts exactly
  // the cmpxchg16b instructions that ran (on a non-x86 build the assert
  // path charges nothing — the counter must not claim hardware ops that
  // never executed). read() is not a policy-level op and must not count.
  Telemetry::reset();
  AdjacentPair p;
  p.lo.store(1);
  p.hi.store(2);
  EXPECT_TRUE(Cmpxchg16bDcas::dcas(p, 1, 2, 3, 4));    // success
  EXPECT_FALSE(Cmpxchg16bDcas::dcas(p, 1, 2, 9, 9));   // failure
  EXPECT_FALSE(Cmpxchg16bDcas::dcas(p, 1, 2, 9, 9));   // failure
  std::uint64_t lo = 0, hi = 0;
  Cmpxchg16bDcas::read(p, lo, hi);
  EXPECT_EQ(lo, 3u);
  EXPECT_EQ(hi, 4u);
  const Counters c = Telemetry::snapshot();
  EXPECT_EQ(c.hw_dcas_calls, 3u);
  EXPECT_EQ(c.hw_dcas_failures, 2u);
  EXPECT_EQ(c.dcas_calls, 0u);  // not a policy-level DCAS
}

TEST(Cmpxchg16b, SuccessAndFailure) {
  AdjacentPair p;
  p.lo.store(1);
  p.hi.store(2);
  EXPECT_TRUE(Cmpxchg16bDcas::dcas(p, 1, 2, 3, 4));
  EXPECT_EQ(p.lo.load(), 3u);
  EXPECT_EQ(p.hi.load(), 4u);
  EXPECT_FALSE(Cmpxchg16bDcas::dcas(p, 1, 2, 9, 9));
  EXPECT_EQ(p.lo.load(), 3u);
  EXPECT_EQ(p.hi.load(), 4u);
}

TEST(Cmpxchg16b, ReadIsAtomicPair) {
  AdjacentPair p;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t x = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::uint64_t lo, hi;
      Cmpxchg16bDcas::read(p, lo, hi);
      Cmpxchg16bDcas::dcas(p, lo, hi, x, x);  // keep lo == hi always
      ++x;
    }
  });
  for (int i = 0; i < 200000; ++i) {
    std::uint64_t lo, hi;
    Cmpxchg16bDcas::read(p, lo, hi);
    ASSERT_EQ(lo, hi);
  }
  stop.store(true);
  writer.join();
}

TEST(Cmpxchg16b, ConcurrentPairedIncrements) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  AdjacentPair p;
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        for (;;) {
          std::uint64_t lo, hi;
          Cmpxchg16bDcas::read(p, lo, hi);
          if (Cmpxchg16bDcas::dcas(p, lo, hi, lo + 1, hi + 1)) break;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(p.lo.load(), static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(p.hi.load(), static_cast<std::uint64_t>(kThreads * kIters));
}

#endif  // __x86_64__

}  // namespace
