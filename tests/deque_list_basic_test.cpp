// ListDeque sequential semantics across DCAS policies and reclaimers.
// Covers Figures 12 and 14 (logical delete, push splice).
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/deque/list_deque.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;
using dcd::reclaim::EbrReclaim;
using dcd::reclaim::LeakyReclaim;

template <typename P, typename R>
struct Cfg {
  using Policy = P;
  using Reclaim = R;
  static_assert(dcd::dcas::DcasPolicy<P>);
  static_assert(dcd::reclaim::ReclaimPolicy<R>);
};

template <typename C>
class ListDequeTest : public ::testing::Test {
 protected:
  template <typename T = std::uint64_t>
  using Deque = ListDeque<T, typename C::Policy, typename C::Reclaim>;
};

using Configs = ::testing::Types<
    Cfg<GlobalLockDcas, EbrReclaim>, Cfg<StripedLockDcas, EbrReclaim>,
    Cfg<McasDcas, EbrReclaim>, Cfg<GlobalLockDcas, LeakyReclaim>,
    Cfg<McasDcas, LeakyReclaim>>;
TYPED_TEST_SUITE(ListDequeTest, Configs);

TYPED_TEST(ListDequeTest, StartsEmpty) {
  typename TestFixture::template Deque<> d;
  EXPECT_FALSE(d.pop_right().has_value());
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_EQ(d.size_unsynchronized(), 0u);
  EXPECT_EQ(d.chain_length_unsynchronized(), 0u);
}

TYPED_TEST(ListDequeTest, PaperSection22ExampleTrace) {
  typename TestFixture::template Deque<> d;
  EXPECT_EQ(d.push_right(1), PushResult::kOkay);
  EXPECT_EQ(d.push_left(2), PushResult::kOkay);
  EXPECT_EQ(d.push_right(3), PushResult::kOkay);
  EXPECT_EQ(d.pop_left(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_FALSE(d.pop_left().has_value());
}

TYPED_TEST(ListDequeTest, LifoEachEnd) {
  typename TestFixture::template Deque<> d;
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 20; i-- > 0;) {
    ASSERT_EQ(d.pop_right(), i);
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(d.push_left(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 20; i-- > 0;) {
    ASSERT_EQ(d.pop_left(), i);
  }
}

TYPED_TEST(ListDequeTest, FifoAcrossEnds) {
  typename TestFixture::template Deque<> d;
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay);
  }
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_EQ(d.pop_left(), i);
  }
  EXPECT_FALSE(d.pop_left().has_value());
}

TYPED_TEST(ListDequeTest, InterleavedEndsKeepOrder) {
  typename TestFixture::template Deque<> d;
  for (std::uint64_t i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      ASSERT_EQ(d.push_right(i), PushResult::kOkay);
    } else {
      ASSERT_EQ(d.push_left(i), PushResult::kOkay);
    }
  }
  // Deque is <5 3 1 0 2 4>.
  EXPECT_EQ(d.pop_left(), 5u);
  EXPECT_EQ(d.pop_right(), 4u);
  EXPECT_EQ(d.pop_left(), 3u);
  EXPECT_EQ(d.pop_right(), 2u);
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_EQ(d.pop_right(), 0u);
}

TYPED_TEST(ListDequeTest, AllocatorExhaustionReturnsFull) {
  // Footnote 3: push returns "full" when the allocator fails.
  typename TestFixture::template Deque<> d(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(d.push_right(i), PushResult::kOkay);
  }
  EXPECT_EQ(d.push_right(99), PushResult::kFull);
  EXPECT_EQ(d.push_left(99), PushResult::kFull);
  EXPECT_EQ(d.pop_left(), 0u);
}

TYPED_TEST(ListDequeTest, StoresPointersAndSigned) {
  typename TestFixture::template Deque<int*> dp;
  alignas(8) int x = 5;
  ASSERT_EQ(dp.push_left(&x), PushResult::kOkay);
  EXPECT_EQ(dp.pop_right(), &x);

  typename TestFixture::template Deque<std::int64_t> ds;
  ASSERT_EQ(ds.push_right(-42), PushResult::kOkay);
  EXPECT_EQ(ds.pop_left(), -42);
}

TYPED_TEST(ListDequeTest, ManyCycles) {
  typename TestFixture::template Deque<> d(1 << 12);
  for (std::uint64_t round = 0; round < 2000; ++round) {
    ASSERT_EQ(d.push_right(round), PushResult::kOkay);
    ASSERT_EQ(d.pop_left(), round);
  }
  EXPECT_EQ(d.size_unsynchronized(), 0u);
}

}  // namespace
