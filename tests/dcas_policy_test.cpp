// Typed tests: every DCAS policy must implement Figure 1's semantics.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dcd/dcas/policies.hpp"
#include "dcd/dcas/telemetry.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"

namespace {

using namespace dcd::dcas;

template <typename P>
class DcasPolicyTest : public ::testing::Test {};

using Policies =
    ::testing::Types<GlobalLockDcas, StripedLockDcas, McasDcas>;
TYPED_TEST_SUITE(DcasPolicyTest, Policies);

// Everything this suite exercises must satisfy the policy contract.
static_assert(DcasPolicy<GlobalLockDcas> && DcasPolicy<StripedLockDcas> &&
              DcasPolicy<McasDcas>);

// Payload helper: clean user values (low 3 bits clear).
constexpr std::uint64_t val(std::uint64_t x) { return encode_payload(x); }

TYPED_TEST(DcasPolicyTest, SuccessWritesBothWords) {
  Word a(val(1)), b(val(2));
  EXPECT_TRUE(TypeParam::dcas(a, b, val(1), val(2), val(3), val(4)));
  EXPECT_EQ(TypeParam::load(a), val(3));
  EXPECT_EQ(TypeParam::load(b), val(4));
}

TYPED_TEST(DcasPolicyTest, FirstMismatchFailsAndWritesNothing) {
  Word a(val(1)), b(val(2));
  EXPECT_FALSE(TypeParam::dcas(a, b, val(9), val(2), val(3), val(4)));
  EXPECT_EQ(TypeParam::load(a), val(1));
  EXPECT_EQ(TypeParam::load(b), val(2));
}

TYPED_TEST(DcasPolicyTest, SecondMismatchFailsAndWritesNothing) {
  Word a(val(1)), b(val(2));
  EXPECT_FALSE(TypeParam::dcas(a, b, val(1), val(9), val(3), val(4)));
  EXPECT_EQ(TypeParam::load(a), val(1));
  EXPECT_EQ(TypeParam::load(b), val(2));
}

TYPED_TEST(DcasPolicyTest, IdentityDcasSucceeds) {
  Word a(val(5)), b(val(6));
  EXPECT_TRUE(TypeParam::dcas(a, b, val(5), val(6), val(5), val(6)));
  EXPECT_EQ(TypeParam::load(a), val(5));
  EXPECT_EQ(TypeParam::load(b), val(6));
}

TYPED_TEST(DcasPolicyTest, ViewFormReportsAtomicPairOnFailure) {
  Word a(val(1)), b(val(2));
  std::uint64_t oa = val(7), ob = val(8);
  EXPECT_FALSE(TypeParam::dcas_view(a, b, oa, ob, val(3), val(4)));
  EXPECT_EQ(oa, val(1));
  EXPECT_EQ(ob, val(2));
}

TYPED_TEST(DcasPolicyTest, ViewFormSucceedsLikeBooleanForm) {
  Word a(val(1)), b(val(2));
  std::uint64_t oa = val(1), ob = val(2);
  EXPECT_TRUE(TypeParam::dcas_view(a, b, oa, ob, val(3), val(4)));
  EXPECT_EQ(oa, val(1));  // unchanged on success
  EXPECT_EQ(ob, val(2));
  EXPECT_EQ(TypeParam::load(a), val(3));
  EXPECT_EQ(TypeParam::load(b), val(4));
}

TYPED_TEST(DcasPolicyTest, StoreInitThenLoadRoundTrips) {
  Word w;
  TypeParam::store_init(w, val(42));
  EXPECT_EQ(TypeParam::load(w), val(42));
}

TYPED_TEST(DcasPolicyTest, TelemetryCountsCallsAndFailures) {
  Word a(val(1)), b(val(2));
  Telemetry::reset();
  (void)TypeParam::dcas(a, b, val(1), val(2), val(1), val(2));
  (void)TypeParam::dcas(a, b, val(9), val(9), val(0), val(0));
  const Counters c = Telemetry::snapshot();
  EXPECT_EQ(c.dcas_calls, 2u);
  EXPECT_EQ(c.dcas_failures, 1u);
}

// Atomic-increment torture: 2 counters updated only together; their values
// must stay equal and reach exactly threads*iters.
TYPED_TEST(DcasPolicyTest, ConcurrentPairedIncrements) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  Word a(val(0)), b(val(0));
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        for (;;) {
          const std::uint64_t va = TypeParam::load(a);
          const std::uint64_t vb = TypeParam::load(b);
          if (va == vb && TypeParam::dcas(a, b, va, vb,
                                          val(decode_payload(va) + 1),
                                          val(decode_payload(vb) + 1))) {
            break;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(TypeParam::load(a), val(kThreads * kIters));
  EXPECT_EQ(TypeParam::load(b), val(kThreads * kIters));
}

// Two overlapping word pairs (a,b) and (b,c): DCASes racing over the shared
// middle word must never produce a state where the invariant a+c == 2*b is
// violated (each op moves the pair consistently).
TYPED_TEST(DcasPolicyTest, OverlappingPairsKeepInvariant) {
  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  // Even threads DCAS-increment the pair (a, b); odd threads the pair
  // (b, c). The shared middle word b serialises them.
  Word a(val(0)), b(val(0)), c(val(0));
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        Word& first = (t % 2 == 0) ? a : b;
        Word& second = (t % 2 == 0) ? b : c;
        for (;;) {
          const std::uint64_t v1 = TypeParam::load(first);
          const std::uint64_t v2 = TypeParam::load(second);
          if (TypeParam::dcas(first, second, v1, v2,
                              val(decode_payload(v1) + 1),
                              val(decode_payload(v2) + 1))) {
            break;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  // a was bumped only by even threads, c only by odd threads, b by all.
  const std::uint64_t fa = decode_payload(TypeParam::load(a));
  const std::uint64_t fb = decode_payload(TypeParam::load(b));
  const std::uint64_t fc = decode_payload(TypeParam::load(c));
  EXPECT_EQ(fa + fc, fb);
  EXPECT_EQ(fb, static_cast<std::uint64_t>(kThreads * kIters));
}

}  // namespace
