// ValueCodec round-trips and reserved-bit discipline.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/deque/value_codec.hpp"

namespace {

using namespace dcd::deque;
namespace dw = dcd::dcas;

TEST(Codec, UnsignedRoundTrip) {
  using C = ValueCodec<std::uint64_t>;
  for (std::uint64_t v : {0ull, 1ull, 42ull, (1ull << 61) - 1}) {
    const std::uint64_t w = C::encode(v);
    EXPECT_EQ(C::decode(w), v);
    EXPECT_EQ(w & 0x7u, 0u) << "low bits must stay clear for the engine";
  }
}

TEST(Codec, SmallUnsignedTypes) {
  EXPECT_EQ(ValueCodec<std::uint8_t>::decode(
                ValueCodec<std::uint8_t>::encode(255)),
            255);
  EXPECT_EQ(ValueCodec<std::uint16_t>::decode(
                ValueCodec<std::uint16_t>::encode(65535)),
            65535);
  EXPECT_EQ(ValueCodec<std::uint32_t>::decode(
                ValueCodec<std::uint32_t>::encode(0xdeadbeefu)),
            0xdeadbeefu);
}

TEST(Codec, SignedZigZagRoundTrip) {
  using C = ValueCodec<std::int64_t>;
  for (std::int64_t v : {0ll, 1ll, -1ll, 123456789ll, -987654321ll,
                         (1ll << 59), -(1ll << 59)}) {
    const std::uint64_t w = C::encode(v);
    EXPECT_EQ(C::decode(w), v);
    EXPECT_EQ(w & 0x7u, 0u);
  }
}

TEST(Codec, SignedInt32RoundTrip) {
  using C = ValueCodec<std::int32_t>;
  for (std::int32_t v : {0, -1, 1, INT32_MIN, INT32_MAX}) {
    EXPECT_EQ(C::decode(C::encode(v)), v);
  }
}

TEST(Codec, PointerRoundTrip) {
  using C = ValueCodec<double*>;
  alignas(8) double d = 3.14;
  const std::uint64_t w = C::encode(&d);
  EXPECT_EQ(C::decode(w), &d);
  EXPECT_EQ(*C::decode(w), 3.14);
  EXPECT_EQ(C::decode(C::encode(static_cast<double*>(nullptr))), nullptr);
}

TEST(Codec, UnsignedMaxPayloadIsStorableAndOverflowDies) {
  using C = ValueCodec<std::uint64_t>;
  // The largest storable value uses every payload bit...
  EXPECT_EQ(C::decode(C::encode(dw::kMaxPayload)), dw::kMaxPayload);
  EXPECT_FALSE(dw::is_special(C::encode(dw::kMaxPayload)));
  // ...and one past it would spill into the reserved tag bits.
  EXPECT_DEATH(C::encode(dw::kMaxPayload + 1), "dcd assertion failed");
}

TEST(Codec, SignedZigZagExtremesAndOverflowDies) {
  using C = ValueCodec<std::int64_t>;
  // Zig-zag headroom: v in [-2^60, 2^60 - 1] fits kMaxPayload exactly.
  constexpr std::int64_t kMax = (1ll << 60) - 1;
  constexpr std::int64_t kMin = -(1ll << 60);
  EXPECT_EQ(C::decode(C::encode(kMax)), kMax);
  EXPECT_EQ(C::decode(C::encode(kMin)), kMin);
  EXPECT_EQ(C::encode(kMin) & 0x7u, 0u);
  EXPECT_DEATH(C::encode(kMax + 1), "dcd assertion failed");
  EXPECT_DEATH(C::encode(kMin - 1), "dcd assertion failed");
}

TEST(Codec, MisalignedPointerRejected) {
  using C = ValueCodec<std::uint8_t*>;
  alignas(8) static std::uint8_t buf[16] = {};
  EXPECT_EQ(C::decode(C::encode(&buf[0])), &buf[0]);
  EXPECT_EQ(C::decode(C::encode(&buf[8])), &buf[8]);
  for (std::size_t off : {1u, 2u, 4u, 7u}) {
    EXPECT_DEATH(C::encode(&buf[off]), "dcd assertion failed");
  }
}

TEST(Codec, SentinelEncodingsRoundTripThroughPayloadHelpers) {
  // The specials are special-flagged payloads 0..3 — stable indices the
  // engine relies on, recoverable via decode_payload.
  EXPECT_EQ(dw::decode_payload(dw::kNull), 0u);
  EXPECT_EQ(dw::decode_payload(dw::kSentL), 1u);
  EXPECT_EQ(dw::decode_payload(dw::kSentR), 2u);
  EXPECT_EQ(dw::decode_payload(dw::kDummy), 3u);
  for (std::uint64_t s : {dw::kNull, dw::kSentL, dw::kSentR, dw::kDummy}) {
    EXPECT_TRUE(dw::is_special(s));
    EXPECT_FALSE(dw::is_descriptor(s));
    // Rebuilding the special from its payload index restores the word
    // (kNull is the payload-0 special, i.e. the bare special flag).
    EXPECT_EQ(dw::encode_payload(dw::decode_payload(s)) | dw::kNull, s);
  }
  // The three paper specials plus kDummy are pairwise distinct.
  EXPECT_NE(dw::kNull, dw::kSentL);
  EXPECT_NE(dw::kNull, dw::kSentR);
  EXPECT_NE(dw::kSentL, dw::kSentR);
  EXPECT_NE(dw::kDummy, dw::kNull);
  EXPECT_NE(dw::kDummy, dw::kSentL);
  EXPECT_NE(dw::kDummy, dw::kSentR);
}

TEST(Codec, EncodedValuesNeverCollideWithSpecials) {
  for (std::uint64_t v = 0; v < 1024; ++v) {
    const std::uint64_t w = ValueCodec<std::uint64_t>::encode(v);
    EXPECT_NE(w, dw::kNull);
    EXPECT_NE(w, dw::kSentL);
    EXPECT_NE(w, dw::kSentR);
    EXPECT_FALSE(dw::is_special(w));
    EXPECT_FALSE(dw::is_descriptor(w));
  }
}

}  // namespace
