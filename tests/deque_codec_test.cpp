// ValueCodec round-trips and reserved-bit discipline.
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/deque/value_codec.hpp"

namespace {

using namespace dcd::deque;
namespace dw = dcd::dcas;

TEST(Codec, UnsignedRoundTrip) {
  using C = ValueCodec<std::uint64_t>;
  for (std::uint64_t v : {0ull, 1ull, 42ull, (1ull << 61) - 1}) {
    const std::uint64_t w = C::encode(v);
    EXPECT_EQ(C::decode(w), v);
    EXPECT_EQ(w & 0x7u, 0u) << "low bits must stay clear for the engine";
  }
}

TEST(Codec, SmallUnsignedTypes) {
  EXPECT_EQ(ValueCodec<std::uint8_t>::decode(
                ValueCodec<std::uint8_t>::encode(255)),
            255);
  EXPECT_EQ(ValueCodec<std::uint16_t>::decode(
                ValueCodec<std::uint16_t>::encode(65535)),
            65535);
  EXPECT_EQ(ValueCodec<std::uint32_t>::decode(
                ValueCodec<std::uint32_t>::encode(0xdeadbeefu)),
            0xdeadbeefu);
}

TEST(Codec, SignedZigZagRoundTrip) {
  using C = ValueCodec<std::int64_t>;
  for (std::int64_t v : {0ll, 1ll, -1ll, 123456789ll, -987654321ll,
                         (1ll << 59), -(1ll << 59)}) {
    const std::uint64_t w = C::encode(v);
    EXPECT_EQ(C::decode(w), v);
    EXPECT_EQ(w & 0x7u, 0u);
  }
}

TEST(Codec, SignedInt32RoundTrip) {
  using C = ValueCodec<std::int32_t>;
  for (std::int32_t v : {0, -1, 1, INT32_MIN, INT32_MAX}) {
    EXPECT_EQ(C::decode(C::encode(v)), v);
  }
}

TEST(Codec, PointerRoundTrip) {
  using C = ValueCodec<double*>;
  alignas(8) double d = 3.14;
  const std::uint64_t w = C::encode(&d);
  EXPECT_EQ(C::decode(w), &d);
  EXPECT_EQ(*C::decode(w), 3.14);
  EXPECT_EQ(C::decode(C::encode(static_cast<double*>(nullptr))), nullptr);
}

TEST(Codec, EncodedValuesNeverCollideWithSpecials) {
  for (std::uint64_t v = 0; v < 1024; ++v) {
    const std::uint64_t w = ValueCodec<std::uint64_t>::encode(v);
    EXPECT_NE(w, dw::kNull);
    EXPECT_NE(w, dw::kSentL);
    EXPECT_NE(w, dw::kSentR);
    EXPECT_FALSE(dw::is_special(w));
    EXPECT_FALSE(dw::is_descriptor(w));
  }
}

}  // namespace
