// Exhaustive interleaving checks for the list algorithm — the executable
// counterpart of §5.2 (RepInv of Figures 24/25, abstraction preservation of
// the delete DCASes, and the Figure 16 contending-deletes race).
#include <gtest/gtest.h>

#include "dcd/model/list_model.hpp"

namespace {

using namespace dcd::model;

// --- RepInv / abstraction unit checks ---------------------------------------

TEST(ListModel, RepInvHoldsForFigure9States) {
  // The four empty configurations.
  EXPECT_TRUE(list_rep_inv(ListState::empty(2)));
  EXPECT_TRUE(list_rep_inv(ListState::with_deleted(2, {}, false, true)));
  EXPECT_TRUE(list_rep_inv(ListState::with_deleted(2, {}, true, false)));
  EXPECT_TRUE(list_rep_inv(ListState::with_deleted(2, {}, true, true)));
  // Populated, with and without pending deletions.
  EXPECT_TRUE(list_rep_inv(ListState::with_items(2, {5, 6, 7})));
  EXPECT_TRUE(list_rep_inv(ListState::with_deleted(2, {5}, true, true)));
}

TEST(ListModel, RepInvRejectsCorruptStates) {
  {
    ListState st = ListState::with_items(2, {5});
    st.nodes[st.nodes[ListState::kSL].right.id].value = kVNull;  // orphan null
    EXPECT_FALSE(list_rep_inv(st));
  }
  {
    ListState st = ListState::empty(2);
    st.nodes[ListState::kSR].left.deleted = true;  // bit set, no null node
    EXPECT_FALSE(list_rep_inv(st));
  }
  {
    ListState st = ListState::with_items(2, {5, 6});
    // Break the doubly-linked mirror.
    const auto first = st.nodes[ListState::kSL].right.id;
    st.nodes[first].right = {first, false};  // cycle
    EXPECT_FALSE(list_rep_inv(st));
  }
  {
    ListState st = ListState::with_items(2, {5});
    st.nodes[st.nodes[ListState::kSL].right.id].left.deleted = true;
    EXPECT_FALSE(list_rep_inv(st));  // interior word with a deleted bit
  }
}

TEST(ListModel, AbstractionSkipsNullNodes) {
  EXPECT_TRUE(list_abstraction(ListState::empty(1)).empty());
  EXPECT_TRUE(
      list_abstraction(ListState::with_deleted(1, {}, true, true)).empty());
  EXPECT_EQ(list_abstraction(ListState::with_deleted(1, {4, 5}, true, true)),
            (std::vector<std::uint64_t>{4, 5}));
}

// --- exhaustive interleavings ------------------------------------------------

TEST(ListModel, TwoPopsRaceForLastItem) {
  const auto r = explore_list(ListState::with_items(4, {7}),
                              {{ListOpKind::kPopRight}, {ListOpKind::kPopLeft}});
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.completions, 0u);
}

TEST(ListModel, Figure16ContendingDeletes) {
  // Two logically deleted nodes; a pop from each side must run the
  // deleteRight/deleteLeft machinery whose pair-DCASes overlap on the
  // sentinel words.
  const auto st = ListState::with_deleted(4, {}, true, true);
  const auto r =
      explore_list(st, {{ListOpKind::kPopRight}, {ListOpKind::kPopLeft}});
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.states, 50u);
}

TEST(ListModel, Figure16WithPushesContending) {
  // Pushes also trigger the physical deletes (Figure 15).
  const auto st = ListState::with_deleted(6, {}, true, true);
  const auto r = explore_list(
      st, {{ListOpKind::kPushRight, 8}, {ListOpKind::kPushLeft, 9}});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ListModel, PendingRightDeletionAllPairs) {
  // Figure 9's one-deleted-node states against every second operation.
  const std::vector<ListOpSpec> seconds = {{ListOpKind::kPopRight},
                                           {ListOpKind::kPopLeft},
                                           {ListOpKind::kPushRight, 8},
                                           {ListOpKind::kPushLeft, 9}};
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    for (std::size_t j = 0; j < seconds.size(); ++j) {
      const auto st = ListState::with_deleted(6, {}, false, true);
      const auto r = explore_list(st, {seconds[i], seconds[j]});
      ASSERT_TRUE(r.ok) << "ops " << i << "," << j << ": " << r.error;
    }
  }
}

TEST(ListModel, PendingLeftDeletionWithItems) {
  const auto st = ListState::with_deleted(6, {5}, true, false);
  const auto r = explore_list(
      st, {{ListOpKind::kPopLeft}, {ListOpKind::kPopRight}});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ListModel, PushPopOnEmpty) {
  const auto r = explore_list(
      ListState::empty(4), {{ListOpKind::kPushRight, 5}, {ListOpKind::kPopRight}});
  EXPECT_TRUE(r.ok) << r.error;
  const auto r2 = explore_list(
      ListState::empty(4), {{ListOpKind::kPushLeft, 5}, {ListOpKind::kPopRight}});
  EXPECT_TRUE(r2.ok) << r2.error;
}

TEST(ListModel, SameEndCollisions) {
  const auto pushes = explore_list(
      ListState::with_items(6, {1}),
      {{ListOpKind::kPushRight, 8}, {ListOpKind::kPushRight, 9}});
  EXPECT_TRUE(pushes.ok) << pushes.error;
  const auto pops = explore_list(ListState::with_items(6, {1, 2}),
                                 {{ListOpKind::kPopLeft}, {ListOpKind::kPopLeft}});
  EXPECT_TRUE(pops.ok) << pops.error;
}

TEST(ListModel, OppositeEndsOnLongDeque) {
  const auto r = explore_list(
      ListState::with_items(6, {1, 2, 3}),
      {{ListOpKind::kPushRight, 8}, {ListOpKind::kPopLeft}});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ListModel, ThreeOpsAroundTwoDeleted) {
  // The hardest configuration: both bits set plus a third operation in
  // flight. This covers the deleteLeft-single vs deleteRight-pair overlap
  // the paper walks through in Figure 16's caption.
  const auto st = ListState::with_deleted(8, {}, true, true);
  const auto r = explore_list(st, {{ListOpKind::kPopRight},
                                   {ListOpKind::kPopLeft},
                                   {ListOpKind::kPushRight, 8}});
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.states, 1000u);
}

TEST(ListModel, ThreeOpsOnSingleton) {
  const auto r = explore_list(ListState::with_items(8, {7}),
                              {{ListOpKind::kPopRight},
                               {ListOpKind::kPopLeft},
                               {ListOpKind::kPushLeft, 9}});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ListModel, DetectsInjectedPushBug) {
  // Sensitivity check: with line 7 deleted, a push splices onto a
  // logically-deleted neighbour, stranding the null node mid-chain (and
  // smearing the deleted bit into an interior pointer word). The explorer
  // must catch this; otherwise an "all interleavings pass" result from the
  // real algorithm would mean nothing.
  const auto st = ListState::with_deleted(6, {}, false, true);
  const auto r = explore_list(st, {{ListOpKind::kPushRight, 9}},
                              ListMutation::kPushSkipsDeletedCheck);
  EXPECT_FALSE(r.ok) << "explorer failed to detect the injected bug";
}

TEST(ListModel, PushMutationHarmlessWithoutPendingDeletion) {
  // Control: with no deleted bit in sight, line 7 never fires, so the
  // mutated machine is behaviourally identical — detection above is
  // attributable to the missing check, not collateral model damage.
  const auto r = explore_list(ListState::with_items(6, {5}),
                              {{ListOpKind::kPushRight, 9}},
                              ListMutation::kPushSkipsDeletedCheck);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ListModel, Line18MutationIsSafetyBenignUnderGc) {
  // Analysis encoded as a test: deleting the paper's line-18 check (the
  // other sentinel's bit, before the pair-DCAS) does NOT break safety when
  // nodes are never reused (GC / pinned-EBR semantics): the pair-DCAS's own
  // two-word validation subsumes it, because any state change that could
  // make the stale reads dangerous also changes one of the validated
  // sentinel words. The paper needs line 18 for its *lock-freedom*
  // argument (§5.2 uses its failure to derive a contradiction), not for
  // linearizability. Every interleaving must still pass.
  for (const auto& ops : std::vector<std::vector<ListOpSpec>>{
           {{ListOpKind::kPopRight}, {ListOpKind::kPopLeft}},
           {{ListOpKind::kPopRight}, {ListOpKind::kPopLeft},
            {ListOpKind::kPushLeft, 9}},
           {{ListOpKind::kPushRight, 8}, {ListOpKind::kPopLeft}},
       }) {
    const auto st = ListState::with_deleted(8, {}, true, true);
    const auto r =
        explore_list(st, ops, ListMutation::kPairDeleteSkipsBitCheck);
    ASSERT_TRUE(r.ok) << r.error;
  }
}

TEST(ListModel, RejectsCorruptInitialState) {
  ListState bad = ListState::empty(2);
  bad.nodes[ListState::kSL].value = 123;  // sentinel value clobbered
  const auto r = explore_list(bad, {{ListOpKind::kPopRight}});
  EXPECT_FALSE(r.ok);
}

}  // namespace
