// Larger exhaustive explorations of the array model (kept in their own
// binary so ctest can run them in parallel with the rest).
#include <gtest/gtest.h>

#include "dcd/model/array_model.hpp"

namespace {

using namespace dcd::model;

TEST(ArrayModelDeep, FourOpsOnTinyDeque) {
  // Two pops racing two pushes across a capacity-2 deque holding one item:
  // every boundary case (empty, full, last-item steal) is reachable.
  const auto r = explore_array(
      ArrayState::with_items(2, {5}),
      {{OpKind::kPopRight}, {OpKind::kPopLeft},
       {OpKind::kPushRight, 7}, {OpKind::kPushLeft, 8}});
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.states, 500u);  // memoisation collapses the raw schedule count
  EXPECT_GT(r.completions, 0u);
}

TEST(ArrayModelDeep, FourOpsOnEmpty) {
  const auto r = explore_array(
      ArrayState::empty(3),
      {{OpKind::kPushRight, 7}, {OpKind::kPushLeft, 8}, {OpKind::kPopRight},
       {OpKind::kPopLeft}});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ArrayModelDeep, FourOpsOnFull) {
  const auto r = explore_array(
      ArrayState::with_items(3, {1, 2, 3}),
      {{OpKind::kPushRight, 7}, {OpKind::kPushLeft, 8}, {OpKind::kPopRight},
       {OpKind::kPopLeft}});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ArrayModelDeep, ThreeSameEndPoppers) {
  const auto r = explore_array(
      ArrayState::with_items(4, {1, 2}),
      {{OpKind::kPopRight}, {OpKind::kPopRight}, {OpKind::kPopRight}});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ArrayModelDeep, AllStartOffsetsCapacityThree) {
  // Wrapped configurations: the invariant's wrapped/non-wrapped case split
  // must hold regardless of where the segment sits.
  for (std::size_t l_pos = 0; l_pos < 3; ++l_pos) {
    for (std::size_t items = 0; items <= 3; ++items) {
      std::vector<std::uint64_t> vs;
      for (std::size_t i = 0; i < items; ++i) vs.push_back(10 + i);
      const auto r = explore_array(
          ArrayState::with_items(3, vs, l_pos),
          {{OpKind::kPopLeft}, {OpKind::kPushRight, 9}});
      ASSERT_TRUE(r.ok)
          << "l_pos=" << l_pos << " items=" << items << ": " << r.error;
    }
  }
}

TEST(ArrayModelDeep, WeakOptionsFourOps) {
  // The no-optimisation variant must also survive the 4-op race.
  const auto r = explore_array(
      ArrayState::with_items(2, {5}),
      {{OpKind::kPopRight}, {OpKind::kPopLeft},
       {OpKind::kPushRight, 7}, {OpKind::kPushLeft, 8}},
      dcd::deque::ArrayOptions{false, false});
  EXPECT_TRUE(r.ok) << r.error;
}

}  // namespace
