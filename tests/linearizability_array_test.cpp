// Theorem 3.1, checked empirically: recorded concurrent histories of the
// array deque must be linearizable, across policies, options, capacities
// and workload mixes (including the 1-2 element deques that hammer the
// Figure 6 boundary races).
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/deque/array_deque.hpp"
#include "dcd/verify/driver.hpp"
#include "dcd/verify/linearizability.hpp"

namespace {

using namespace dcd::deque;
using namespace dcd::verify;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename P, ArrayOptions O>
struct Cfg {
  using Policy = P;
  static constexpr ArrayOptions kOpt = O;
};

template <typename C>
class ArrayLinTest : public ::testing::Test {
 protected:
  using Deque = ArrayDeque<std::uint64_t, typename C::Policy, C::kOpt>;

  // Runs `rounds` short recorded workloads and checks each.
  void check_rounds(std::size_t capacity, const WorkloadConfig& base,
                    int rounds) {
    for (int r = 0; r < rounds; ++r) {
      Deque d(capacity);
      WorkloadConfig cfg = base;
      cfg.seed = base.seed + static_cast<std::uint64_t>(r) * 7919;
      const History h = run_recorded(d, cfg);
      const CheckResult res = check_linearizable(h, capacity);
      ASSERT_EQ(res.verdict, Verdict::kLinearizable)
          << "round " << r << " (seed " << cfg.seed << "): " << res.message;
    }
  }
};

constexpr ArrayOptions kBoth{true, true};
constexpr ArrayOptions kNeither{false, false};

using Configs =
    ::testing::Types<Cfg<GlobalLockDcas, kBoth>, Cfg<GlobalLockDcas, kNeither>,
                     Cfg<StripedLockDcas, kBoth>, Cfg<McasDcas, kBoth>,
                     Cfg<McasDcas, kNeither>>;
TYPED_TEST_SUITE(ArrayLinTest, Configs);

TYPED_TEST(ArrayLinTest, TinyDequeTwoThreads) {
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.ops_per_thread = 12;
  cfg.seed = 1;
  this->check_rounds(1, cfg, 40);
  this->check_rounds(2, cfg, 40);
}

TYPED_TEST(ArrayLinTest, SmallDequeThreeThreads) {
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 8;
  cfg.seed = 100;
  this->check_rounds(3, cfg, 30);
}

TYPED_TEST(ArrayLinTest, PopHeavyHammersEmpty) {
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 10;
  cfg.seed = 200;
  cfg.push_right = 1;
  cfg.push_left = 1;
  cfg.pop_right = 4;
  cfg.pop_left = 4;
  this->check_rounds(2, cfg, 30);
}

TYPED_TEST(ArrayLinTest, PushHeavyHammersFull) {
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.ops_per_thread = 10;
  cfg.seed = 300;
  cfg.push_right = 4;
  cfg.push_left = 4;
  cfg.pop_right = 1;
  cfg.pop_left = 1;
  this->check_rounds(2, cfg, 30);
}

TYPED_TEST(ArrayLinTest, FourThreadsMidSize) {
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.ops_per_thread = 7;
  cfg.seed = 400;
  this->check_rounds(8, cfg, 20);
}

}  // namespace
