// Non-blocking progress, empirically.
//
// The paper's central design point for the list deque is the *split pop*
// (§1.2): once the logical delete lands, the physical delete can be
// "performed by the next push or next pop operation on that side", so a
// popper suspended between the two steps never blocks anyone. We test
// exactly that observable property: a thread completes a pop (leaving the
// deleted bit set), is then suspended indefinitely, and every other
// operation must still complete. With a mutex-style design the analogous
// suspension (inside the critical section) would deadlock the system —
// that contrast is what "non-blocking" buys.
//
// For the MCAS policy we additionally check system-wide progress under
// heavy oversubscription (no operation can be starved forever by stalled
// peers, because helpers complete in-flight DCASes).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/util/barrier.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::GlobalLockDcas;
using dcd::dcas::McasDcas;
using dcd::dcas::StripedLockDcas;

template <typename P>
class ProgressTest : public ::testing::Test {};

using Policies = ::testing::Types<GlobalLockDcas, StripedLockDcas, McasDcas>;
TYPED_TEST_SUITE(ProgressTest, Policies);

TYPED_TEST(ProgressTest, SuspendedPopperDoesNotBlockTheListDeque) {
  ListDeque<std::uint64_t, TypeParam> d(1 << 10);
  ASSERT_EQ(d.push_right(1), PushResult::kOkay);
  ASSERT_EQ(d.push_right(2), PushResult::kOkay);

  // "Suspend" a popper between its two steps: the logical delete completed
  // (deleted bit set), the physical delete never runs because the thread
  // goes away for good.
  std::thread popper([&] { ASSERT_EQ(d.pop_right(), 2u); });
  popper.join();
  ASSERT_TRUE(d.right_deleted_bit_unsynchronized());

  // Every operation class must still complete from this state.
  EXPECT_EQ(d.push_right(3), PushResult::kOkay);   // performs the delete
  EXPECT_EQ(d.pop_right(), 3u);                    // sets the bit again
  EXPECT_EQ(d.pop_left(), 1u);
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_FALSE(d.pop_right().has_value());
  EXPECT_EQ(d.push_left(4), PushResult::kOkay);
  EXPECT_EQ(d.pop_right(), 4u);
}

TYPED_TEST(ProgressTest, BothBitsPendingStillMakesProgress) {
  ListDeque<std::uint64_t, TypeParam> d(1 << 10);
  ASSERT_EQ(d.push_right(1), PushResult::kOkay);
  ASSERT_EQ(d.push_right(2), PushResult::kOkay);
  ASSERT_EQ(d.pop_left(), 1u);
  ASSERT_EQ(d.pop_right(), 2u);
  ASSERT_TRUE(d.left_deleted_bit_unsynchronized());
  ASSERT_TRUE(d.right_deleted_bit_unsynchronized());
  // Both poppers are "gone"; all four op classes still work.
  EXPECT_FALSE(d.pop_left().has_value());
  EXPECT_FALSE(d.pop_right().has_value());
  EXPECT_EQ(d.push_left(5), PushResult::kOkay);
  EXPECT_EQ(d.pop_right(), 5u);
}

// System-wide progress under oversubscription: with many more threads than
// cores all hammering one end, total completed operations must keep
// growing — a (weak but real) empirical check of the lock-freedom claim.
TYPED_TEST(ProgressTest, ThroughputNeverStallsUnderOversubscription) {
  ArrayDeque<std::uint64_t, TypeParam> d(1 << 8);
  constexpr int kThreads = 8;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> stop{false};
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      barrier.arrive_and_wait();
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (t % 2 == 0) {
          (void)d.push_right((static_cast<std::uint64_t>(t) << 32) | ++i);
        } else {
          (void)d.pop_right();
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Watch total completions over several windows; each must advance.
  // Windows are generous so sanitizer/valgrind slowdowns on a single core
  // don't produce false stalls.
  std::uint64_t last = 0;
  for (int window = 0; window < 5; ++window) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::uint64_t now = completed.load(std::memory_order_relaxed);
    EXPECT_GT(now, last) << "no progress in window " << window;
    last = now;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : ts) t.join();
}

}  // namespace
