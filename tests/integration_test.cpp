// Cross-module integration: the deques driving a small work-stealing
// scheduler (the paper's §1 motivating application [4]) and a pipeline,
// comparing DCAS deques against the ABP baseline for result equivalence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "dcd/baseline/arora_deque.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/list_deque.hpp"
#include "dcd/util/barrier.hpp"
#include "dcd/util/rng.hpp"

namespace {

using namespace dcd::deque;
using dcd::dcas::McasDcas;

// A toy fork-join workload: each task either produces two child tasks or
// contributes its weight to a global sum. The correct total is independent
// of scheduling, so any loss/duplication in the deque shows up as a wrong
// sum.
//
// Owner thread w uses the right end of its own deque (push/pop); thieves
// take from the left end — exactly the deque-based load balancing the paper
// cites Arora et al. for, but on a fully general deque.
template <typename MakeDeque>
std::uint64_t run_work_stealing(MakeDeque make_deque, int workers,
                                std::uint64_t seed_tasks) {
  using Deque = typename std::invoke_result_t<MakeDeque>::element_type;
  std::vector<std::unique_ptr<Deque>> deques;
  for (int w = 0; w < workers; ++w) deques.push_back(make_deque());

  // Task encoding: (depth << 32) | weight. Tasks with depth > 0 fork two
  // children of depth-1; depth-0 tasks add their weight to the sum.
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::int64_t> outstanding{0};

  for (std::uint64_t i = 0; i < seed_tasks; ++i) {
    const std::uint64_t task = (3ull << 32) | (i + 1);
    outstanding.fetch_add(1);
    EXPECT_EQ(deques[i % workers]->push_right(task), PushResult::kOkay);
  }

  dcd::util::SpinBarrier barrier(workers);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      dcd::util::Xoshiro256 rng(w + 1);
      barrier.arrive_and_wait();
      while (outstanding.load(std::memory_order_acquire) > 0) {
        std::optional<std::uint64_t> task = deques[w]->pop_right();
        if (!task) {  // steal from a victim's opposite end
          const int victim = static_cast<int>(rng.below(workers));
          task = deques[victim]->pop_left();
        }
        if (!task) {
          std::this_thread::yield();
          continue;
        }
        const std::uint64_t depth = *task >> 32;
        const std::uint64_t weight = *task & 0xffffffffull;
        if (depth == 0) {
          sum.fetch_add(weight, std::memory_order_relaxed);
          outstanding.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          const std::uint64_t child = ((depth - 1) << 32) | weight;
          outstanding.fetch_add(1, std::memory_order_acq_rel);
          while (deques[w]->push_right(child) != PushResult::kOkay) {
            std::this_thread::yield();
          }
          while (deques[w]->push_right(child) != PushResult::kOkay) {
            std::this_thread::yield();
          }
          // Net accounting: the parent retires (-1) and two children are
          // born (+2) — the single fetch_add(1) above covers both.
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return sum.load();
}

TEST(Integration, WorkStealingSumMatchesOnArrayDeque) {
  constexpr std::uint64_t kSeeds = 32;
  // Each seed task of depth 3 fans out to 2^3 leaves of its weight.
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < kSeeds; ++i) expect += 8 * (i + 1);
  const std::uint64_t got = run_work_stealing(
      [] {
        return std::make_unique<ArrayDeque<std::uint64_t, McasDcas>>(1
                                                                     << 12);
      },
      3, kSeeds);
  EXPECT_EQ(got, expect);
}

TEST(Integration, WorkStealingSumMatchesOnListDeque) {
  constexpr std::uint64_t kSeeds = 32;
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < kSeeds; ++i) expect += 8 * (i + 1);
  const std::uint64_t got = run_work_stealing(
      [] {
        return std::make_unique<ListDeque<std::uint64_t, McasDcas>>(1 << 14);
      },
      3, kSeeds);
  EXPECT_EQ(got, expect);
}

// Pipeline: stage 1 pushes right, stage 2 pops left, transforms, pushes to
// a second deque, stage 3 pops left and accumulates. FIFO order must be
// preserved end to end when each stage is single-threaded.
TEST(Integration, PipelinePreservesFifoOrder) {
  ArrayDeque<std::uint64_t, McasDcas> stage1(256);
  ListDeque<std::uint64_t, McasDcas> stage2(1 << 10);
  constexpr std::uint64_t kItems = 5000;

  std::vector<std::uint64_t> out;
  out.reserve(kItems);

  std::thread producer([&] {
    for (std::uint64_t i = 1; i <= kItems; ++i) {
      while (stage1.push_right(i) != PushResult::kOkay) {
        std::this_thread::yield();
      }
    }
  });
  std::thread transformer([&] {
    for (std::uint64_t n = 0; n < kItems;) {
      if (auto v = stage1.pop_left()) {
        while (stage2.push_right(*v * 2) != PushResult::kOkay) {
          std::this_thread::yield();
        }
        ++n;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::thread consumer([&] {
    for (std::uint64_t n = 0; n < kItems;) {
      if (auto v = stage2.pop_left()) {
        out.push_back(*v);
        ++n;
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  transformer.join();
  consumer.join();

  ASSERT_EQ(out.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(out[i], (i + 1) * 2);
  }
}

// The same owner/thief pattern must work on the restricted ABP deque,
// establishing the E6 comparison is apples-to-apples.
TEST(Integration, AbpDequeRunsTheStealWorkload) {
  using dcd::baseline::AroraDeque;
  constexpr int kWorkers = 3;
  constexpr std::uint64_t kSeeds = 32;
  std::vector<std::unique_ptr<AroraDeque<std::uint64_t>>> deques;
  for (int w = 0; w < kWorkers; ++w) {
    deques.push_back(std::make_unique<AroraDeque<std::uint64_t>>(1 << 12));
  }
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::int64_t> outstanding{0};
  for (std::uint64_t i = 0; i < kSeeds; ++i) {
    outstanding.fetch_add(1);
    ASSERT_EQ(deques[i % kWorkers]->push_bottom((3ull << 32) | (i + 1)),
              PushResult::kOkay);
  }
  dcd::util::SpinBarrier barrier(kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      dcd::util::Xoshiro256 rng(w + 17);
      barrier.arrive_and_wait();
      while (outstanding.load(std::memory_order_acquire) > 0) {
        std::optional<std::uint64_t> task = deques[w]->pop_bottom();
        if (!task) {
          task = deques[rng.below(kWorkers)]->steal();
        }
        if (!task) {
          std::this_thread::yield();
          continue;
        }
        const std::uint64_t depth = *task >> 32;
        const std::uint64_t weight = *task & 0xffffffffull;
        if (depth == 0) {
          sum.fetch_add(weight, std::memory_order_relaxed);
          outstanding.fetch_sub(1, std::memory_order_acq_rel);
        } else {
          const std::uint64_t child = ((depth - 1) << 32) | weight;
          outstanding.fetch_add(1, std::memory_order_acq_rel);
          while (deques[w]->push_bottom(child) != PushResult::kOkay) {
            std::this_thread::yield();
          }
          while (deques[w]->push_bottom(child) != PushResult::kOkay) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < kSeeds; ++i) expect += 8 * (i + 1);
  EXPECT_EQ(sum.load(), expect);
}

}  // namespace
