// NodePool: alignment, exhaustion, recycling, EBR-callback integration.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "dcd/reclaim/ebr.hpp"
#include "dcd/reclaim/node_pool.hpp"
#include "dcd/util/align.hpp"
#include "dcd/util/barrier.hpp"

namespace {

using dcd::reclaim::EbrDomain;
using dcd::reclaim::NodePool;

TEST(NodePool, AllocationsAreCacheAlignedAndDistinct) {
  NodePool pool(24, 16);
  std::set<void*> seen;
  for (int i = 0; i < 16; ++i) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % dcd::util::kCacheLineSize,
              0u);
    EXPECT_TRUE(pool.owns(p));
    EXPECT_TRUE(seen.insert(p).second);
  }
}

TEST(NodePool, ExhaustionReturnsNullAndCounts) {
  NodePool pool(8, 4);
  void* ps[4];
  for (auto& p : ps) {
    p = pool.allocate();
    ASSERT_NE(p, nullptr);
  }
  EXPECT_EQ(pool.allocate(), nullptr);
  EXPECT_EQ(pool.allocation_failures(), 1u);
  pool.deallocate(ps[0]);
  EXPECT_NE(pool.allocate(), nullptr);
}

TEST(NodePool, LiveCountTracksAllocations) {
  NodePool pool(8, 8);
  EXPECT_EQ(pool.live(), 0u);
  void* a = pool.allocate();
  void* b = pool.allocate();
  EXPECT_EQ(pool.live(), 2u);
  pool.deallocate(a);
  pool.deallocate(b);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(NodePool, OwnsRejectsForeignAndMisalignedPointers) {
  NodePool pool(8, 4);
  int x;
  EXPECT_FALSE(pool.owns(&x));
  void* p = pool.allocate();
  EXPECT_TRUE(pool.owns(p));
  EXPECT_FALSE(pool.owns(static_cast<char*>(p) + 1));
}

TEST(NodePool, NodeSizeRoundsToCacheLine) {
  NodePool pool(1, 2);
  EXPECT_EQ(pool.node_size(), dcd::util::kCacheLineSize);
  NodePool pool2(65, 2);
  EXPECT_EQ(pool2.node_size(), 2 * dcd::util::kCacheLineSize);
}

TEST(NodePool, EbrCallbackReturnsNodesToPool) {
  // Pool declared first: it must outlive the domain, whose destructor
  // drains retired nodes back into it.
  NodePool pool(16, 8);
  EbrDomain domain;
  std::vector<void*> ps;
  for (int i = 0; i < 8; ++i) ps.push_back(pool.allocate());
  for (void* p : ps) domain.retire(p, NodePool::deallocate_cb, &pool);
  for (int i = 0; i < 6; ++i) domain.collect();
  EXPECT_EQ(pool.live(), 0u);
  // The full capacity is allocatable again.
  for (int i = 0; i < 8; ++i) ASSERT_NE(pool.allocate(), nullptr);
}

TEST(NodePool, ConcurrentAllocFreeThroughEbrIsLossless) {
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  constexpr std::size_t kCap = 64;
  NodePool pool(32, kCap);  // must outlive the domain (drain-on-destroy)
  EbrDomain domain;
  dcd::util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        EbrDomain::Guard guard(domain);
        void* p = pool.allocate();
        if (p != nullptr) {
          domain.retire(p, NodePool::deallocate_cb, &pool);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int i = 0; i < 6; ++i) domain.collect();
  EXPECT_EQ(pool.live(), 0u);
  // No node was lost: we can still allocate the full capacity.
  std::size_t count = 0;
  while (pool.allocate() != nullptr) ++count;
  EXPECT_EQ(count, kCap);
}

}  // namespace
