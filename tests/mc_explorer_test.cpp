// Acceptance tests for the DPOR explorer (ISSUE: exhaustively verify the
// array deque at N ∈ {2, 3} under 2 threads × 3 ops and the list deque
// under 2 threads × 3 ops, including a scenario that provably visits the
// Figure 16 two-null-splice state).
//
// Labelled `mc` in CMake: the CI model-checking job runs exactly these.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dcd/dcas/chaos.hpp"
#include "dcd/mc/explorer.hpp"
#include "dcd/mc/scenario.hpp"

namespace {

using namespace dcd;

mc::Scenario builtin(const std::string& name) {
  mc::Scenario sc;
  EXPECT_TRUE(mc::find_builtin(name, sc)) << name;
  return sc;
}

void expect_clean_exhaustive(const mc::ExploreResult& res) {
  EXPECT_TRUE(res.ok) << res.message;
  EXPECT_TRUE(res.complete) << res.message;
  EXPECT_EQ(res.violation.kind, mc::ViolationKind::kNone);
  EXPECT_GT(res.stats.executions, 0u);
  EXPECT_GT(res.stats.transitions, 0u);
}

// --- the acceptance suite --------------------------------------------------

TEST(McExplorer, ArrayN2MixedExhaustiveClean) {
  expect_clean_exhaustive(mc::explore(builtin("array-n2-mixed")));
}

TEST(McExplorer, ArrayN3MixedExhaustiveClean) {
  expect_clean_exhaustive(mc::explore(builtin("array-n3-mixed")));
}

TEST(McExplorer, ArrayBoundaryRaceExhaustiveClean) {
  // L == R ambiguous-boundary traffic: every execution crosses the
  // (L+1) mod N == R state and must disambiguate by cell contents.
  const mc::ExploreResult res = mc::explore(builtin("array-n2-boundary-race"));
  expect_clean_exhaustive(res);
  EXPECT_GT(res.stats.shape_steps[static_cast<std::size_t>(
                dcas::DcasShape::kEmptyConfirm)],
            0u);
}

TEST(McExplorer, ListMixedExhaustiveClean) {
  const mc::ExploreResult res = mc::explore(builtin("list-mixed"));
  expect_clean_exhaustive(res);
  EXPECT_GT(res.stats.shape_steps[static_cast<std::size_t>(
                dcas::DcasShape::kLogicalDelete)],
            0u);
}

TEST(McExplorer, ListSingleItemPopRaceExhaustiveClean) {
  expect_clean_exhaustive(mc::explore(builtin("list-single-item-pop-race")));
}

TEST(McExplorer, ListExecStealVsOwnPopExhaustiveClean) {
  // Work-stealing executor shape (src/exec): owner pops/forks on the right
  // while a thief pops the left. Every interleaving must hand off each
  // task exactly once — a lost or duplicated middle element would show up
  // as a linearizability violation here before it ever corrupts a
  // fork/join checksum under chaos.
  const mc::ExploreResult res =
      mc::explore(builtin("list-exec-steal-vs-own-pop"));
  expect_clean_exhaustive(res);
  EXPECT_GT(res.stats.shape_steps[static_cast<std::size_t>(
                dcas::DcasShape::kLogicalDelete)],
            0u);
}

TEST(McExplorer, Figure16ScenarioVisitsTwoNullSplice) {
  // The engineered Figure 16 scenario must *provably* reach the paper's
  // two-logically-deleted-nodes state and resolve it with a successful
  // two-null double-splice DCAS — the stats prove the visit happened.
  const mc::ExploreResult res = mc::explore(mc::figure16_scenario());
  expect_clean_exhaustive(res);
  EXPECT_GT(res.stats.two_deleted_states, 0u)
      << "never reached the two-logically-deleted state";
  EXPECT_GT(res.stats.shape_steps[static_cast<std::size_t>(
                dcas::DcasShape::kTwoNullSplice)],
            0u)
      << "no successful two-null double splice";
  EXPECT_GT(res.stats.shape_executions[static_cast<std::size_t>(
                dcas::DcasShape::kTwoNullSplice)],
            0u);
}

TEST(McExplorer, ListElimSameEndExhaustiveClean) {
  // Elimination layer (DESIGN.md §13): same-end push/pop traffic under two
  // contending pushers. Exhaustive exploration must (a) stay linearizable
  // across every interleaving — including the eliminated pairs that
  // transfer a value without touching the list — and (b) provably drive
  // every protocol transition: offer, the take that linearizes both ops,
  // the cancel of an unclaimed offer, and the pusher's clear handshake.
  const mc::ExploreResult res = mc::explore(builtin("list-elim-same-end"));
  expect_clean_exhaustive(res);
  const auto steps = [&](dcas::DcasShape s) {
    return res.stats.shape_steps[static_cast<std::size_t>(s)];
  };
  EXPECT_GT(steps(dcas::DcasShape::kElimOffer), 0u) << "no offer posted";
  EXPECT_GT(steps(dcas::DcasShape::kElimTake), 0u)
      << "no interleaving eliminated a push/pop pair";
  EXPECT_GT(steps(dcas::DcasShape::kElimCancel), 0u) << "no offer cancelled";
  EXPECT_GT(steps(dcas::DcasShape::kElimClear), 0u) << "no take acknowledged";
  // Exactly-once transfer: every take is matched by one clear (the pusher
  // that observed its offer consumed), never by a cancel of the same slot.
  EXPECT_EQ(steps(dcas::DcasShape::kElimTake),
            steps(dcas::DcasShape::kElimClear));
  EXPECT_GT(res.stats.shape_executions[static_cast<std::size_t>(
                dcas::DcasShape::kElimTake)],
            0u);
}

// --- DPOR soundness cross-validation ---------------------------------------

// DPOR prunes interleavings, never outcomes: the set of distinct
// per-execution outcomes (every op's result + the final structural state)
// must be identical to the brute-force mode's on the same scenario.
void expect_same_outcomes(const std::string& name) {
  mc::ExplorerOptions dpor;
  dpor.mode = mc::SearchMode::kDpor;
  mc::ExplorerOptions full;
  full.mode = mc::SearchMode::kFull;
  const mc::ExploreResult a = mc::explore(builtin(name), dpor);
  const mc::ExploreResult b = mc::explore(builtin(name), full);
  ASSERT_TRUE(a.ok && a.complete) << a.message;
  ASSERT_TRUE(b.ok && b.complete) << b.message;
  EXPECT_EQ(a.distinct_outcomes, b.distinct_outcomes) << name;
  // The reduced search must not do *more* work than brute force.
  EXPECT_LE(a.stats.transitions, b.stats.transitions) << name;
}

TEST(McExplorerCrossValidation, ArrayN2MatchesBruteForce) {
  expect_same_outcomes("array-n2-mixed");
}

TEST(McExplorerCrossValidation, ArrayBoundaryMatchesBruteForce) {
  expect_same_outcomes("array-n2-boundary-race");
}

TEST(McExplorerCrossValidation, ListSingleItemMatchesBruteForce) {
  expect_same_outcomes("list-single-item-pop-race");
}

TEST(McExplorerCrossValidation, ListElimMatchesBruteForce) {
  expect_same_outcomes("list-elim-same-end");
}

TEST(McExplorerCrossValidation, Figure16MatchesBruteForce) {
  const mc::ExploreResult a = mc::explore(mc::figure16_scenario());
  mc::ExplorerOptions full;
  full.mode = mc::SearchMode::kFull;
  const mc::ExploreResult b = mc::explore(mc::figure16_scenario(), full);
  ASSERT_TRUE(a.ok && a.complete) << a.message;
  ASSERT_TRUE(b.ok && b.complete) << b.message;
  EXPECT_EQ(a.distinct_outcomes, b.distinct_outcomes);
}

// --- bounded-search degradations -------------------------------------------

TEST(McExplorer, ExecutionCapReportsIncomplete) {
  mc::ExplorerOptions opt;
  opt.max_executions = 3;
  const mc::ExploreResult res = mc::explore(builtin("list-mixed"), opt);
  EXPECT_TRUE(res.ok);        // nothing wrong was *found*
  EXPECT_FALSE(res.complete);  // but the space was not exhausted
  EXPECT_LE(res.stats.executions + res.stats.pruned_executions, 3u);
}

TEST(McExplorer, RunScheduleReplaysDeterministically) {
  // An explicit grant schedule re-runs through the same runtime with the
  // same audits; a clean scenario stays clean and the executed schedule
  // is reported.
  const mc::Scenario sc = builtin("array-n2-mixed");
  const mc::ScheduleRunReport rep = mc::run_schedule(sc, {0, 0, 0, 1, 1});
  EXPECT_EQ(rep.kind, mc::ViolationKind::kNone) << rep.detail;
  EXPECT_GE(rep.schedule_executed.size(), 5u);
}

}  // namespace
