// Contract violations must abort loudly (DCD_ASSERT is always on — see
// util/assert.hpp for why release builds keep these checks).
#include <gtest/gtest.h>

#include <cstdint>

#include "dcd/dcas/mcas.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/deque/value_codec.hpp"
#include "dcd/reclaim/node_pool.hpp"

namespace {

using namespace dcd;

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, CodecRejectsOversizedPayload) {
  using C = deque::ValueCodec<std::uint64_t>;
  EXPECT_DEATH((void)C::encode(1ull << 62), "assertion failed");
}

TEST(ContractDeathTest, CodecRejectsMisalignedPointer) {
  using C = deque::ValueCodec<char*>;
  alignas(8) static char buf[16];
  EXPECT_EQ(C::decode(C::encode(&buf[0])), &buf[0]);  // aligned: fine
  EXPECT_DEATH((void)C::encode(&buf[1]), "assertion failed");
}

TEST(ContractDeathTest, ArrayDequeRejectsZeroCapacity) {
  using D = deque::ArrayDeque<std::uint64_t, dcas::GlobalLockDcas>;
  EXPECT_DEATH(D d(0), "assertion failed");
}

TEST(ContractDeathTest, NodePoolRejectsZeroCapacity) {
  EXPECT_DEATH(reclaim::NodePool pool(64, 0), "assertion failed");
}

TEST(ContractDeathTest, McasRejectsAliasedWords) {
  dcas::Word w(dcas::encode_payload(1));
  EXPECT_DEATH((void)dcas::McasDcas::dcas(w, w, 0, 0, 0, 0),
               "assertion failed");
}

}  // namespace
