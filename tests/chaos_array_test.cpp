// ArrayDeque under ChaosDcas: a popper parked at its commit point must not
// stop the other workers (§3 is lock-free — the parked thread holds no
// resource anyone waits on), and randomized fault schedules must not break
// linearizability.
#include <gtest/gtest.h>

#include "dcd/dcas/chaos.hpp"
#include "dcd/dcas/policies.hpp"
#include "dcd/deque/array_deque.hpp"
#include "dcd/verify/driver.hpp"

namespace {

using namespace dcd;
using dcas::ChaosController;
using dcas::ChaosDcas;
using dcas::ChaosSchedule;

template <typename P>
class ChaosArrayTest : public ::testing::Test {
 protected:
  using Deque = deque::ArrayDeque<std::uint64_t, ChaosDcas<P>>;
};

using Inners = ::testing::Types<dcas::GlobalLockDcas, dcas::StripedLockDcas,
                                dcas::McasDcas>;
TYPED_TEST_SUITE(ChaosArrayTest, Inners);

constexpr std::size_t kCapacity = 64;

TYPED_TEST(ChaosArrayTest, ParkedPopperSmoke) {
  typename TestFixture::Deque d(kCapacity);
  ChaosController chaos(
      ChaosSchedule::from_seed(dcas::chaos_seed_from_env(2026)));
  SCOPED_TRACE(chaos.schedule().describe());

  verify::ChaosSmokeConfig cfg;
  cfg.park_point = dcas::sync_point::kPopCommit;
  cfg.popper_op = verify::OpType::kPopRight;
  cfg.seed = chaos.schedule().seed;
  cfg.capacity = kCapacity;
  cfg.min_total_ops = 2000;

  const verify::ChaosSmokeReport rep = verify::run_parked_popper_smoke(
      d, chaos, cfg);
  EXPECT_TRUE(rep.ok) << rep.message;
  EXPECT_TRUE(rep.popper_parked_throughout);
  EXPECT_TRUE(rep.popper_resumed);
  EXPECT_GE(rep.worker_ops, cfg.min_total_ops);
  EXPECT_TRUE(d.check_rep_inv_unsynchronized());
  EXPECT_EQ(d.size_unsynchronized(), 0u);
}

TEST(ChaosArrayLockFree, ParkedPopperSmokeTenThousandOps) {
  // ISSUE acceptance: >= 10k completed ops while the popper stays parked,
  // under the lock-free DCAS emulation.
  deque::ArrayDeque<std::uint64_t, ChaosDcas<dcas::McasDcas>> d(kCapacity);
  ChaosController chaos(
      ChaosSchedule::from_seed(dcas::chaos_seed_from_env(2026)));
  SCOPED_TRACE(chaos.schedule().describe());

  verify::ChaosSmokeConfig cfg;
  cfg.park_point = dcas::sync_point::kPopCommit;
  cfg.seed = chaos.schedule().seed;
  cfg.capacity = kCapacity;
  cfg.min_total_ops = 10'000;

  const verify::ChaosSmokeReport rep = verify::run_parked_popper_smoke(
      d, chaos, cfg);
  EXPECT_TRUE(rep.ok) << rep.message;
  EXPECT_TRUE(rep.popper_parked_throughout);
  EXPECT_GE(rep.worker_ops, 10'000u);
  EXPECT_TRUE(d.check_rep_inv_unsynchronized());
}

TEST(ChaosArrayLockFree, ForcedFailuresOnlyCauseRetries) {
  // A schedule at the aggressive end of from_seed's range: spurious DCAS
  // failures and delays everywhere must only slow the deque down, never
  // corrupt it — single-threaded, so outcomes are exactly predictable.
  // The weak variant (no dcas_view) routes every op through the boolean
  // DCAS form, the only one the wrapper may force-fail.
  deque::ArrayDeque<std::uint64_t, ChaosDcas<dcas::McasDcas>,
                    deque::ArrayOptions{false, false}>
      d(8);
  ChaosSchedule s;
  s.seed = 99;
  s.delay_per_mille = 200;
  s.max_delay_spins = 64;
  s.dcas_fail_per_mille = 400;
  ChaosController chaos(s);

  for (std::uint64_t round = 0; round < 50; ++round) {
    ASSERT_EQ(d.push_right(round), deque::PushResult::kOkay);
    ASSERT_EQ(d.push_left(1000 + round), deque::PushResult::kOkay);
    ASSERT_EQ(d.pop_left(), 1000 + round);
    ASSERT_EQ(d.pop_right(), round);
    ASSERT_TRUE(d.check_rep_inv_unsynchronized());
  }
  EXPECT_EQ(d.size_unsynchronized(), 0u);
  EXPECT_GT(chaos.forced_failures(), 0u);
}

}  // namespace
