#!/usr/bin/env python3
"""Run a google-benchmark binary and distill its JSON output into a compact,
diff-friendly artifact for the recorded perf trajectory (BENCH_*.json).

Usage:
    scripts/bench_to_json.py BINARY -o BENCH_foo.json \
        [--filter REGEX] [--min-time SECONDS] [--repetitions N] \
        [--label TEXT] [--smoke-only]
    scripts/bench_to_json.py --from-json raw.json -o BENCH_foo.json

The first form runs BINARY with --benchmark_out (JSON) and distills the
result. The second form distills an existing --benchmark_out file instead
of running anything.

Honesty contract (schema 2): an artifact is only trajectory-grade when it
was measured on an optimized build with real parallelism. The distiller
REFUSES to write anything when the benchmark context reports a debug
build (either google-benchmark's own library_build_type or the binary's
dcd_build_type, which records the NDEBUG state of the code under test) or
fewer than two CPUs — unless --smoke-only is passed, which writes the
artifact stamped "smoke_only": true so downstream tooling
(scripts/bench_compare.py) knows the numbers prove wiring, not speed.

Output schema (documented in EXPERIMENTS.md, "Recorded benchmark JSON"):

    {
      "schema": 2,
      "binary": "bench_e11_allocation",
      "label": "optional free-text note",
      "smoke_only": false,                   # true => not perf-comparable
      "date": "2026-08-05T12:34:56Z",        # always UTC, always present
      "context": {
        "num_cpus": 4, "mhz_per_cpu": 2100,
        "library_build_type": "release", "load_avg": [..],
        "build_type": "release",             # dcd_build_type (NDEBUG)
        "compiler": "gcc 12.2.0",            # dcd_compiler
        "cpu_affinity": "pthread_setaffinity_np",  # dcd_affinity
        "git_sha": "abc123..."               # null outside a git checkout
      },
      "benchmarks": [
        {
          "name": "E11_DequeMixed/list_mcas_magazine/real_time/threads:4",
          "threads": 4,
          "aggregate": "median",              # absent for single-rep rows
          "real_time_ns": 1617.2,
          "cpu_time_ns": 1669.0,
          "iterations": 86720,
          "items_per_second": 618327.0,
          "counters": {"lat_p99_ns": 3904.0, "magazine_hit/op": 0.4861, ...}
        }, ...
      ]
    }

When the run used --repetitions, only mean/median/stddev aggregate rows are
kept (the per-rep rows are noise we deliberately do not record); otherwise
every row is kept. Counters are every user counter except items_per_second.

Failure contract: any problem — binary missing or crashing, malformed or
empty benchmark JSON, a row that reported error_occurred, a missing or
unparseable context date, or a debug/single-CPU recording without
--smoke-only — exits nonzero with a one-line diagnostic and writes NO
artifact (the output is written atomically via a temp file + rename, so a
failed run can never leave a partial or empty BENCH_*.json behind for the
trajectory to pick up). `--self-test` exercises these failure paths
against seeded inputs.
"""
import argparse
import datetime
import json
import os
import re
import subprocess
import sys
import tempfile


SCHEMA_VERSION = 2


class BenchError(Exception):
    """Raised for any condition that must abort without an artifact."""

# Google-benchmark reports these outside "counters"; everything else in a
# benchmark entry that is numeric goes into our "counters" map.
STANDARD_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "family_index",
    "per_family_instance_index", "items_per_second", "label",
    "error_occurred", "error_message",
}

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def normalize_date(raw_date) -> str:
    """Normalize google-benchmark's context date to UTC ISO-8601 (Z suffix).

    The library emits local time with a UTC offset ("...T22:16:12+00:00");
    a naive timestamp (no offset) is treated as already-UTC, which is the
    only deterministic reading. Missing or unparseable dates are an error:
    an artifact without a trustworthy timestamp cannot anchor a trajectory.
    """
    if not isinstance(raw_date, str) or not raw_date.strip():
        raise BenchError("context.date is missing — refusing to record an "
                         "artifact without a timestamp")
    try:
        dt = datetime.datetime.fromisoformat(raw_date.strip())
    except ValueError as e:
        raise BenchError(f"context.date {raw_date!r} is not ISO-8601: {e}") \
            from e
    if dt.tzinfo is None:
        dt = dt.replace(tzinfo=datetime.timezone.utc)
    dt = dt.astimezone(datetime.timezone.utc)
    return dt.strftime("%Y-%m-%dT%H:%M:%SZ")


def honesty_violations(ctx: dict) -> list:
    """Reasons this run's numbers are not trajectory-grade (empty if honest).

    dcd_build_type is the authoritative build-type signal: it records the
    NDEBUG state of the code under test, registered by bench_common.hpp via
    AddCustomContext. library_build_type only describes how libbenchmark
    itself was compiled, but a debug value there still taints timing (the
    measurement loop's overhead is unoptimized), so either one refuses.
    """
    reasons = []
    lbt = ctx.get("library_build_type")
    if isinstance(lbt, str) and "debug" in lbt.lower():
        reasons.append(f"library_build_type is {lbt!r}")
    dbt = ctx.get("dcd_build_type")
    if dbt is not None and dbt != "release":
        reasons.append(f"dcd_build_type is {dbt!r} (code under test "
                       "compiled without NDEBUG)")
    ncpu = ctx.get("num_cpus")
    if not isinstance(ncpu, int) or ncpu < 2:
        reasons.append(f"num_cpus is {ncpu!r} (contention sweeps need real "
                       "parallelism)")
    return reasons


def git_head_sha() -> "str | None":
    """Best effort: the checkout's HEAD SHA, or None outside a repo."""
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        proc = subprocess.run(["git", "-C", repo, "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and re.fullmatch(r"[0-9a-f]{40}", sha) \
        else None


def run_binary(args: argparse.Namespace) -> dict:
    # The binaries print informational lines (topology banner) to stderr,
    # but other harness noise could still reach stdout; have the library
    # write its JSON to a file so the report channel is unshared.
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [
            args.binary,
            f"--benchmark_out={tmp.name}",
            "--benchmark_out_format=json",
        ]
        if args.filter:
            cmd.append(f"--benchmark_filter={args.filter}")
        if args.min_time is not None:
            cmd.append(f"--benchmark_min_time={args.min_time}")
        if args.repetitions and args.repetitions > 1:
            cmd += [
                f"--benchmark_repetitions={args.repetitions}",
                # Interleave A/B repetitions so slow drift (thermal, noisy
                # neighbours) does not bias one configuration.
                "--benchmark_enable_random_interleaving=true",
            ]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True)
        except OSError as e:
            raise BenchError(f"cannot run {args.binary}: {e}") from e
        if proc.returncode != 0:
            tail = proc.stderr.strip().splitlines()[-3:]
            raise BenchError(
                f"{args.binary} exited {proc.returncode}"
                + ("".join("\n  " + t for t in tail)))
        try:
            with open(tmp.name) as f:
                return json.load(f)
        except json.JSONDecodeError as e:
            raise BenchError(
                f"{args.binary} wrote malformed benchmark JSON: {e}") from e


def distill(raw: dict, binary: str, label: str, smoke_only: bool = False,
            git_sha: "str | None" = None) -> dict:
    if not isinstance(raw, dict):
        raise BenchError(f"{binary}: benchmark output is not a JSON object")
    ctx = raw.get("context", {})
    if not isinstance(ctx, dict):
        raise BenchError(f"{binary}: context is not a JSON object")
    rows = raw.get("benchmarks", [])
    if not rows:
        raise BenchError(f"{binary}: no benchmark rows in output (filter "
                         "matched nothing, or the run was cut short)")
    violations = honesty_violations(ctx)
    if violations and not smoke_only:
        detail = "; ".join(violations)
        raise BenchError(
            f"{binary}: refusing to record a perf artifact: {detail}. "
            "Re-run on a Release build with >=2 CPUs, or pass --smoke-only "
            "to record a wiring-check artifact that the trajectory ignores.")
    has_aggregates = any(r.get("run_type") == "aggregate" for r in rows)
    kept = []
    for r in rows:
        if r.get("error_occurred"):
            raise BenchError(f"{binary}: benchmark "
                             f"{r.get('name', '?')!r} reported an error: "
                             f"{r.get('error_message', 'unknown')}")
        if has_aggregates and r.get("run_type") != "aggregate":
            continue
        if r.get("aggregate_name") == "cv":
            continue  # redundant with stddev/mean
        scale = UNIT_TO_NS.get(r.get("time_unit", "ns"), 1.0)
        try:
            entry = {
                "name": r.get("run_name", r["name"]),
                "threads": r.get("threads", 1),
                "real_time_ns": round(r["real_time"] * scale, 3),
                "cpu_time_ns": round(r["cpu_time"] * scale, 3),
                "iterations": r["iterations"],
            }
        except (KeyError, TypeError) as e:
            raise BenchError(f"{binary}: malformed benchmark row "
                             f"{r.get('name', '?')!r}: {e}") from e
        if r.get("aggregate_name"):
            entry["aggregate"] = r["aggregate_name"]
        if "items_per_second" in r:
            entry["items_per_second"] = round(r["items_per_second"], 3)
        counters = {
            k: round(v, 9)
            for k, v in r.items()
            if k not in STANDARD_KEYS and isinstance(v, (int, float))
        }
        if counters:
            entry["counters"] = counters
        kept.append(entry)
    if not kept:
        raise BenchError(f"{binary}: every row was filtered out during "
                         "distillation — refusing to write an empty artifact")
    doc = {
        "schema": SCHEMA_VERSION,
        "binary": binary,
        "smoke_only": bool(smoke_only),
        "date": normalize_date(ctx.get("date")),
        "context": {
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "library_build_type": ctx.get("library_build_type"),
            "load_avg": ctx.get("load_avg"),
            "build_type": ctx.get("dcd_build_type"),
            "compiler": ctx.get("dcd_compiler"),
            "cpu_affinity": ctx.get("dcd_affinity"),
            "git_sha": git_sha,
        },
        "benchmarks": kept,
    }
    if label:
        doc["label"] = label
    return doc


def validate_artifact(doc, path: str) -> None:
    """Schema-2 shape check for a committed BENCH_*.json (drift gate)."""
    def fail(msg):
        raise BenchError(f"{path}: {msg}")

    if not isinstance(doc, dict):
        fail("artifact is not a JSON object")
    if doc.get("schema") != SCHEMA_VERSION:
        fail(f"schema is {doc.get('schema')!r}, expected {SCHEMA_VERSION}")
    if not isinstance(doc.get("smoke_only"), bool):
        fail("smoke_only must be a boolean")
    date = doc.get("date")
    if not isinstance(date, str) or \
            not re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", date):
        fail(f"date {date!r} is not UTC ISO-8601 (YYYY-MM-DDTHH:MM:SSZ)")
    ctx = doc.get("context")
    if not isinstance(ctx, dict):
        fail("context missing")
    for key in ("num_cpus", "library_build_type", "build_type", "compiler",
                "cpu_affinity", "git_sha"):
        if key not in ctx:
            fail(f"context.{key} missing")
    rows = doc.get("benchmarks")
    if not isinstance(rows, list) or not rows:
        fail("benchmarks missing or empty")
    for r in rows:
        for key in ("name", "threads", "real_time_ns", "cpu_time_ns",
                    "iterations"):
            if key not in r:
                fail(f"row {r.get('name', '?')!r} missing {key}")
    if not doc["smoke_only"] and honesty_violations(
            {**ctx, "dcd_build_type": ctx.get("build_type")}):
        fail("claims trajectory-grade (smoke_only: false) but its context "
             "fails the honesty checks")


GOOD_RAW = {
    "context": {"date": "2026-08-05T00:00:00+00:00", "num_cpus": 4,
                "mhz_per_cpu": 2100, "library_build_type": "release",
                "load_avg": [0.1], "dcd_build_type": "release",
                "dcd_compiler": "gcc 12.2.0",
                "dcd_affinity": "pthread_setaffinity_np"},
    "benchmarks": [
        {"name": "E1/x/threads:2", "run_name": "E1/x/threads:2",
         "run_type": "iteration", "threads": 2, "iterations": 100,
         "real_time": 1.5, "cpu_time": 2.9, "time_unit": "us",
         "items_per_second": 12345.6, "magazine_hit/op": 0.5},
    ],
}


def _with_context(raw: dict, **ctx_overrides) -> dict:
    doc = json.loads(json.dumps(raw))
    doc["context"].update(ctx_overrides)
    return doc


def self_test() -> int:
    failures = []

    def expect_error(label, raw, smoke_only=False):
        try:
            distill(raw, "seed", "", smoke_only=smoke_only)
            failures.append(f"{label}: accepted")
        except BenchError:
            pass

    # Good path: distills one row, converts us -> ns, keeps the counter,
    # stamps schema 2 / smoke_only false / normalized date / context keys.
    doc = distill(GOOD_RAW, "seed", "note", git_sha="a" * 40)
    row = doc["benchmarks"][0]
    if (len(doc["benchmarks"]) != 1 or row["real_time_ns"] != 1500.0
            or row["counters"].get("magazine_hit/op") != 0.5
            or doc["label"] != "note"):
        failures.append(f"good-path distillation wrong: {doc}")
    if doc["schema"] != SCHEMA_VERSION or doc["smoke_only"] is not False:
        failures.append(f"schema stamp wrong: {doc}")
    if doc["date"] != "2026-08-05T00:00:00Z":
        failures.append(f"date not normalized to UTC Z: {doc['date']}")
    if (doc["context"]["build_type"] != "release"
            or doc["context"]["compiler"] != "gcc 12.2.0"
            or doc["context"]["cpu_affinity"] != "pthread_setaffinity_np"
            or doc["context"]["git_sha"] != "a" * 40):
        failures.append(f"context keys wrong: {doc['context']}")
    try:
        validate_artifact(doc, "seed")
    except BenchError as e:
        failures.append(f"good artifact failed validation: {e}")

    # Honesty refusals: debug library, debug code-under-test, too few CPUs.
    expect_error("debug library_build_type",
                 _with_context(GOOD_RAW, library_build_type="debug"))
    expect_error("debug dcd_build_type",
                 _with_context(GOOD_RAW, dcd_build_type="debug"))
    expect_error("single cpu", _with_context(GOOD_RAW, num_cpus=1))
    expect_error("missing num_cpus", _with_context(GOOD_RAW, num_cpus=None))

    # --smoke-only overrides the refusal but brands the artifact.
    smoke = distill(_with_context(GOOD_RAW, library_build_type="debug",
                                  dcd_build_type="debug", num_cpus=1),
                    "seed", "", smoke_only=True)
    if smoke["smoke_only"] is not True:
        failures.append("smoke-only artifact not stamped smoke_only: true")
    try:
        validate_artifact(smoke, "seed")
    except BenchError as e:
        failures.append(f"smoke artifact failed validation: {e}")

    # A doc that claims trajectory-grade but has a tainted context must not
    # validate (guards hand-edited artifacts).
    dishonest = json.loads(json.dumps(smoke))
    dishonest["smoke_only"] = False
    try:
        validate_artifact(dishonest, "seed")
        failures.append("validate accepted a dishonest smoke artifact")
    except BenchError:
        pass

    # Date handling: offsets normalize to UTC, naive is read as UTC,
    # missing/garbage refuse.
    off = distill(_with_context(GOOD_RAW, date="2026-08-05T02:00:00+02:00"),
                  "seed", "")
    if off["date"] != "2026-08-05T00:00:00Z":
        failures.append(f"offset date not normalized: {off['date']}")
    naive = distill(_with_context(GOOD_RAW, date="2026-08-05T00:00:00"),
                    "seed", "")
    if naive["date"] != "2026-08-05T00:00:00Z":
        failures.append(f"naive date not treated as UTC: {naive['date']}")
    expect_error("missing date", _with_context(GOOD_RAW, date=None))
    expect_error("empty date", _with_context(GOOD_RAW, date="  "))
    expect_error("garbage date", _with_context(GOOD_RAW, date="yesterday"))

    expect_error("no rows", {"context": GOOD_RAW["context"], "benchmarks": []})
    expect_error("not an object", ["nope"])
    expect_error("error row", {"context": GOOD_RAW["context"], "benchmarks": [
        {"name": "E1", "error_occurred": True, "error_message": "boom"}]})
    expect_error("missing real_time",
                 {"context": GOOD_RAW["context"], "benchmarks": [
                     {"name": "E1", "iterations": 1, "cpu_time": 1.0}]})
    expect_error("all rows filtered",
                 {"context": GOOD_RAW["context"], "benchmarks": [
                     {"name": "E1/cv", "run_type": "aggregate",
                      "aggregate_name": "cv", "real_time": 1.0,
                      "cpu_time": 1.0, "iterations": 1}]})

    # End-to-end failure paths through the CLI: a missing binary, a
    # malformed --from-json file, and a debug recording without
    # --smoke-only must exit 1 and write no artifact; the same debug
    # recording WITH --smoke-only must succeed and stamp the artifact.
    me = os.path.abspath(__file__)
    with tempfile.TemporaryDirectory() as d:
        out = os.path.join(d, "BENCH_x.json")
        bad = os.path.join(d, "bad.json")
        with open(bad, "w") as f:
            f.write("{ not json")
        debug_raw = os.path.join(d, "debug_raw.json")
        with open(debug_raw, "w") as f:
            json.dump(_with_context(GOOD_RAW, library_build_type="debug",
                                    num_cpus=1), f)
        for label, argv in [
            ("missing binary", [os.path.join(d, "no_such_bench"), "-o", out]),
            ("malformed --from-json", ["--from-json", bad, "-o", out]),
            ("debug recording", ["--from-json", debug_raw, "-o", out]),
        ]:
            proc = subprocess.run([sys.executable, me, *argv],
                                  capture_output=True, text=True)
            if proc.returncode == 0:
                failures.append(f"{label}: exited 0")
            if os.path.exists(out):
                failures.append(f"{label}: left an artifact behind")
        proc = subprocess.run(
            [sys.executable, me, "--from-json", debug_raw, "-o", out,
             "--smoke-only"], capture_output=True, text=True)
        if proc.returncode != 0:
            failures.append(
                f"--smoke-only CLI run failed: {proc.stderr.strip()}")
        elif not os.path.exists(out):
            failures.append("--smoke-only CLI run wrote no artifact")
        else:
            with open(out) as f:
                written = json.load(f)
            if written.get("smoke_only") is not True or \
                    written.get("schema") != SCHEMA_VERSION:
                failures.append(f"--smoke-only artifact wrong: {written}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("self-test OK (bench_to_json schema-2 honesty + failure paths)")
    return 0


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("binary", nargs="?", help="benchmark binary to run")
    p.add_argument("--from-json", help="distill an existing raw JSON file")
    p.add_argument("-o", "--output")
    p.add_argument("--filter", help="--benchmark_filter regex")
    p.add_argument("--min-time", type=float, help="--benchmark_min_time")
    p.add_argument("--repetitions", type=int, default=0)
    p.add_argument("--label", default="", help="free-text note for the doc")
    p.add_argument("--smoke-only", action="store_true",
                   help="record a wiring-check artifact even from a debug "
                        "or single-CPU run; stamps smoke_only: true")
    p.add_argument("--validate", metavar="BENCH_JSON", action="append",
                   default=[],
                   help="validate committed artifact(s) against schema 2 "
                        "instead of recording anything")
    p.add_argument("--self-test", action="store_true",
                   help="exercise the failure paths against seeded inputs")
    args = p.parse_args()
    if args.self_test:
        return self_test()
    if args.validate:
        try:
            for path in args.validate:
                try:
                    with open(path) as f:
                        doc = json.load(f)
                except (OSError, json.JSONDecodeError) as e:
                    raise BenchError(f"{path}: {e}") from e
                validate_artifact(doc, path)
        except BenchError as e:
            print(f"bench_to_json: error: {e}", file=sys.stderr)
            return 1
        print(f"{len(args.validate)} artifact(s) conform to schema "
              f"{SCHEMA_VERSION}")
        return 0
    if args.output is None:
        p.error("-o/--output is required")
    if bool(args.binary) == bool(args.from_json):
        p.error("exactly one of BINARY or --from-json is required")
    try:
        if args.from_json:
            try:
                with open(args.from_json) as f:
                    raw = json.load(f)
            except OSError as e:
                raise BenchError(f"cannot read {args.from_json}: {e}") from e
            except json.JSONDecodeError as e:
                raise BenchError(
                    f"{args.from_json} is not valid JSON: {e}") from e
            name = raw.get("context", {}).get("executable", args.from_json) \
                if isinstance(raw, dict) else args.from_json
        else:
            raw = run_binary(args)
            name = args.binary
        name = re.sub(r".*/", "", name)
        doc = distill(raw, name, args.label, smoke_only=args.smoke_only,
                      git_sha=git_head_sha())
    except BenchError as e:
        print(f"bench_to_json: error: {e}", file=sys.stderr)
        return 1
    # Atomic write: never leave a partial artifact if interrupted here.
    tmp_path = args.output + ".tmp"
    with open(tmp_path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    os.replace(tmp_path, args.output)
    kind = "smoke-only" if doc["smoke_only"] else "trajectory-grade"
    print(f"{args.output}: {len(doc['benchmarks'])} rows from {name} "
          f"({kind})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
