#!/usr/bin/env python3
"""Run a google-benchmark binary and distill its JSON output into a compact,
diff-friendly artifact for the recorded perf trajectory (BENCH_*.json).

Usage:
    scripts/bench_to_json.py BINARY -o BENCH_foo.json \
        [--filter REGEX] [--min-time SECONDS] [--repetitions N] [--label TEXT]
    scripts/bench_to_json.py --from-json raw.json -o BENCH_foo.json

The first form runs BINARY with --benchmark_format=json (plus repetitions
and random interleaving when requested) and distills stdout. The second
form distills an existing --benchmark_out file instead of running anything.

Output schema (documented in EXPERIMENTS.md, "Recorded benchmark JSON"):

    {
      "schema": 1,
      "binary": "bench_e11_allocation",
      "label": "optional free-text note",
      "date": "2026-08-05T12:34:56",         # from benchmark's own context
      "context": {
        "num_cpus": 1, "mhz_per_cpu": 2100,
        "library_build_type": "debug", "load_avg": [..]
      },
      "benchmarks": [
        {
          "name": "E11_DequeMixed/list_mcas_magazine/real_time/threads:4",
          "threads": 4,
          "aggregate": "median",              # absent for single-rep rows
          "real_time_ns": 1617.2,
          "cpu_time_ns": 1669.0,
          "iterations": 86720,
          "items_per_second": 618327.0,
          "counters": {"magazine_hit/op": 0.4861, ...}
        }, ...
      ]
    }

When the run used --repetitions, only mean/median/stddev aggregate rows are
kept (the per-rep rows are noise we deliberately do not record); otherwise
every row is kept. Counters are every user counter except items_per_second.

Failure contract: any problem — binary missing or crashing, malformed or
empty benchmark JSON, a row that reported error_occurred — exits nonzero
with a one-line diagnostic and writes NO artifact (the output is written
atomically via a temp file + rename, so a failed run can never leave a
partial or empty BENCH_*.json behind for the trajectory to pick up).
`--self-test` exercises these failure paths against seeded inputs.
"""
import argparse
import json
import os
import re
import subprocess
import sys
import tempfile


class BenchError(Exception):
    """Raised for any condition that must abort without an artifact."""

# Google-benchmark reports these outside "counters"; everything else in a
# benchmark entry that is numeric goes into our "counters" map.
STANDARD_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "family_index",
    "per_family_instance_index", "items_per_second", "label",
    "error_occurred", "error_message",
}

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_binary(args: argparse.Namespace) -> dict:
    # The binaries print informational lines (topology banner) to stdout,
    # which would corrupt --benchmark_format=json; have the library write
    # its JSON to a file instead.
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [
            args.binary,
            f"--benchmark_out={tmp.name}",
            "--benchmark_out_format=json",
        ]
        if args.filter:
            cmd.append(f"--benchmark_filter={args.filter}")
        if args.min_time is not None:
            cmd.append(f"--benchmark_min_time={args.min_time}")
        if args.repetitions and args.repetitions > 1:
            cmd += [
                f"--benchmark_repetitions={args.repetitions}",
                # Interleave A/B repetitions so slow drift (thermal, noisy
                # neighbours) does not bias one configuration.
                "--benchmark_enable_random_interleaving=true",
            ]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True)
        except OSError as e:
            raise BenchError(f"cannot run {args.binary}: {e}") from e
        if proc.returncode != 0:
            tail = proc.stderr.strip().splitlines()[-3:]
            raise BenchError(
                f"{args.binary} exited {proc.returncode}"
                + ("".join("\n  " + t for t in tail)))
        try:
            with open(tmp.name) as f:
                return json.load(f)
        except json.JSONDecodeError as e:
            raise BenchError(
                f"{args.binary} wrote malformed benchmark JSON: {e}") from e


def distill(raw: dict, binary: str, label: str) -> dict:
    if not isinstance(raw, dict):
        raise BenchError(f"{binary}: benchmark output is not a JSON object")
    ctx = raw.get("context", {})
    rows = raw.get("benchmarks", [])
    if not rows:
        raise BenchError(f"{binary}: no benchmark rows in output (filter "
                         "matched nothing, or the run was cut short)")
    has_aggregates = any(r.get("run_type") == "aggregate" for r in rows)
    kept = []
    for r in rows:
        if r.get("error_occurred"):
            raise BenchError(f"{binary}: benchmark "
                             f"{r.get('name', '?')!r} reported an error: "
                             f"{r.get('error_message', 'unknown')}")
        if has_aggregates and r.get("run_type") != "aggregate":
            continue
        if r.get("aggregate_name") == "cv":
            continue  # redundant with stddev/mean
        scale = UNIT_TO_NS.get(r.get("time_unit", "ns"), 1.0)
        try:
            entry = {
                "name": r.get("run_name", r["name"]),
                "threads": r.get("threads", 1),
                "real_time_ns": round(r["real_time"] * scale, 3),
                "cpu_time_ns": round(r["cpu_time"] * scale, 3),
                "iterations": r["iterations"],
            }
        except (KeyError, TypeError) as e:
            raise BenchError(f"{binary}: malformed benchmark row "
                             f"{r.get('name', '?')!r}: {e}") from e
        if r.get("aggregate_name"):
            entry["aggregate"] = r["aggregate_name"]
        if "items_per_second" in r:
            entry["items_per_second"] = round(r["items_per_second"], 3)
        counters = {
            k: round(v, 9)
            for k, v in r.items()
            if k not in STANDARD_KEYS and isinstance(v, (int, float))
        }
        if counters:
            entry["counters"] = counters
        kept.append(entry)
    if not kept:
        raise BenchError(f"{binary}: every row was filtered out during "
                         "distillation — refusing to write an empty artifact")
    doc = {
        "schema": 1,
        "binary": binary,
        "date": ctx.get("date", ""),
        "context": {
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "library_build_type": ctx.get("library_build_type"),
            "load_avg": ctx.get("load_avg"),
        },
        "benchmarks": kept,
    }
    if label:
        doc["label"] = label
    return doc


GOOD_RAW = {
    "context": {"date": "2026-08-05T00:00:00", "num_cpus": 4,
                "mhz_per_cpu": 2100, "library_build_type": "release",
                "load_avg": [0.1]},
    "benchmarks": [
        {"name": "E1/x/threads:2", "run_name": "E1/x/threads:2",
         "run_type": "iteration", "threads": 2, "iterations": 100,
         "real_time": 1.5, "cpu_time": 2.9, "time_unit": "us",
         "items_per_second": 12345.6, "magazine_hit/op": 0.5},
    ],
}


def self_test() -> int:
    failures = []

    def expect_error(label, raw):
        try:
            distill(raw, "seed", "")
            failures.append(f"{label}: accepted")
        except BenchError:
            pass

    # Good path: distills one row, converts us -> ns, keeps the counter.
    doc = distill(GOOD_RAW, "seed", "note")
    row = doc["benchmarks"][0]
    if (len(doc["benchmarks"]) != 1 or row["real_time_ns"] != 1500.0
            or row["counters"].get("magazine_hit/op") != 0.5
            or doc["label"] != "note"):
        failures.append(f"good-path distillation wrong: {doc}")

    expect_error("no rows", {"context": {}, "benchmarks": []})
    expect_error("not an object", ["nope"])
    expect_error("error row", {"benchmarks": [
        {"name": "E1", "error_occurred": True, "error_message": "boom"}]})
    expect_error("missing real_time", {"benchmarks": [
        {"name": "E1", "iterations": 1, "cpu_time": 1.0}]})
    expect_error("all rows filtered", {"benchmarks": [
        {"name": "E1/cv", "run_type": "aggregate", "aggregate_name": "cv",
         "real_time": 1.0, "cpu_time": 1.0, "iterations": 1}]})

    # End-to-end failure paths through the CLI: a missing binary and a
    # malformed --from-json file must exit 1 and write no artifact.
    me = os.path.abspath(__file__)
    with tempfile.TemporaryDirectory() as d:
        out = os.path.join(d, "BENCH_x.json")
        bad = os.path.join(d, "bad.json")
        with open(bad, "w") as f:
            f.write("{ not json")
        for label, argv in [
            ("missing binary", [os.path.join(d, "no_such_bench"), "-o", out]),
            ("malformed --from-json", ["--from-json", bad, "-o", out]),
        ]:
            proc = subprocess.run([sys.executable, me, *argv],
                                  capture_output=True, text=True)
            if proc.returncode == 0:
                failures.append(f"{label}: exited 0")
            if os.path.exists(out):
                failures.append(f"{label}: left an artifact behind")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("self-test OK (bench_to_json failure paths)")
    return 0


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("binary", nargs="?", help="benchmark binary to run")
    p.add_argument("--from-json", help="distill an existing raw JSON file")
    p.add_argument("-o", "--output")
    p.add_argument("--filter", help="--benchmark_filter regex")
    p.add_argument("--min-time", type=float, help="--benchmark_min_time")
    p.add_argument("--repetitions", type=int, default=0)
    p.add_argument("--label", default="", help="free-text note for the doc")
    p.add_argument("--self-test", action="store_true",
                   help="exercise the failure paths against seeded inputs")
    args = p.parse_args()
    if args.self_test:
        return self_test()
    if args.output is None:
        p.error("-o/--output is required")
    if bool(args.binary) == bool(args.from_json):
        p.error("exactly one of BINARY or --from-json is required")
    try:
        if args.from_json:
            try:
                with open(args.from_json) as f:
                    raw = json.load(f)
            except OSError as e:
                raise BenchError(f"cannot read {args.from_json}: {e}") from e
            except json.JSONDecodeError as e:
                raise BenchError(
                    f"{args.from_json} is not valid JSON: {e}") from e
            name = raw.get("context", {}).get("executable", args.from_json) \
                if isinstance(raw, dict) else args.from_json
        else:
            raw = run_binary(args)
            name = args.binary
        name = re.sub(r".*/", "", name)
        doc = distill(raw, name, args.label)
    except BenchError as e:
        print(f"bench_to_json: error: {e}", file=sys.stderr)
        return 1
    # Atomic write: never leave a partial artifact if interrupted here.
    tmp_path = args.output + ".tmp"
    with open(tmp_path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    os.replace(tmp_path, args.output)
    print(f"{args.output}: {len(doc['benchmarks'])} rows from {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
