#!/usr/bin/env python3
"""Run a google-benchmark binary and distill its JSON output into a compact,
diff-friendly artifact for the recorded perf trajectory (BENCH_*.json).

Usage:
    scripts/bench_to_json.py BINARY -o BENCH_foo.json \
        [--filter REGEX] [--min-time SECONDS] [--repetitions N] [--label TEXT]
    scripts/bench_to_json.py --from-json raw.json -o BENCH_foo.json

The first form runs BINARY with --benchmark_format=json (plus repetitions
and random interleaving when requested) and distills stdout. The second
form distills an existing --benchmark_out file instead of running anything.

Output schema (documented in EXPERIMENTS.md, "Recorded benchmark JSON"):

    {
      "schema": 1,
      "binary": "bench_e11_allocation",
      "label": "optional free-text note",
      "date": "2026-08-05T12:34:56",         # from benchmark's own context
      "context": {
        "num_cpus": 1, "mhz_per_cpu": 2100,
        "library_build_type": "debug", "load_avg": [..]
      },
      "benchmarks": [
        {
          "name": "E11_DequeMixed/list_mcas_magazine/real_time/threads:4",
          "threads": 4,
          "aggregate": "median",              # absent for single-rep rows
          "real_time_ns": 1617.2,
          "cpu_time_ns": 1669.0,
          "iterations": 86720,
          "items_per_second": 618327.0,
          "counters": {"magazine_hit/op": 0.4861, ...}
        }, ...
      ]
    }

When the run used --repetitions, only mean/median/stddev aggregate rows are
kept (the per-rep rows are noise we deliberately do not record); otherwise
every row is kept. Counters are every user counter except items_per_second.
"""
import argparse
import json
import re
import subprocess
import sys
import tempfile

# Google-benchmark reports these outside "counters"; everything else in a
# benchmark entry that is numeric goes into our "counters" map.
STANDARD_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "family_index",
    "per_family_instance_index", "items_per_second", "label",
    "error_occurred", "error_message",
}

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_binary(args: argparse.Namespace) -> dict:
    # The binaries print informational lines (topology banner) to stdout,
    # which would corrupt --benchmark_format=json; have the library write
    # its JSON to a file instead.
    with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
        cmd = [
            args.binary,
            f"--benchmark_out={tmp.name}",
            "--benchmark_out_format=json",
        ]
        if args.filter:
            cmd.append(f"--benchmark_filter={args.filter}")
        if args.min_time is not None:
            cmd.append(f"--benchmark_min_time={args.min_time}")
        if args.repetitions and args.repetitions > 1:
            cmd += [
                f"--benchmark_repetitions={args.repetitions}",
                # Interleave A/B repetitions so slow drift (thermal, noisy
                # neighbours) does not bias one configuration.
                "--benchmark_enable_random_interleaving=true",
            ]
        subprocess.run(cmd, check=True, capture_output=True, text=True)
        with open(tmp.name) as f:
            return json.load(f)


def distill(raw: dict, binary: str, label: str) -> dict:
    ctx = raw.get("context", {})
    rows = raw.get("benchmarks", [])
    has_aggregates = any(r.get("run_type") == "aggregate" for r in rows)
    kept = []
    for r in rows:
        if has_aggregates and r.get("run_type") != "aggregate":
            continue
        if r.get("aggregate_name") == "cv":
            continue  # redundant with stddev/mean
        scale = UNIT_TO_NS.get(r.get("time_unit", "ns"), 1.0)
        entry = {
            "name": r.get("run_name", r["name"]),
            "threads": r.get("threads", 1),
            "real_time_ns": round(r["real_time"] * scale, 3),
            "cpu_time_ns": round(r["cpu_time"] * scale, 3),
            "iterations": r["iterations"],
        }
        if r.get("aggregate_name"):
            entry["aggregate"] = r["aggregate_name"]
        if "items_per_second" in r:
            entry["items_per_second"] = round(r["items_per_second"], 3)
        counters = {
            k: round(v, 9)
            for k, v in r.items()
            if k not in STANDARD_KEYS and isinstance(v, (int, float))
        }
        if counters:
            entry["counters"] = counters
        kept.append(entry)
    doc = {
        "schema": 1,
        "binary": binary,
        "date": ctx.get("date", ""),
        "context": {
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "library_build_type": ctx.get("library_build_type"),
            "load_avg": ctx.get("load_avg"),
        },
        "benchmarks": kept,
    }
    if label:
        doc["label"] = label
    return doc


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("binary", nargs="?", help="benchmark binary to run")
    p.add_argument("--from-json", help="distill an existing raw JSON file")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--filter", help="--benchmark_filter regex")
    p.add_argument("--min-time", type=float, help="--benchmark_min_time")
    p.add_argument("--repetitions", type=int, default=0)
    p.add_argument("--label", default="", help="free-text note for the doc")
    args = p.parse_args()
    if bool(args.binary) == bool(args.from_json):
        p.error("exactly one of BINARY or --from-json is required")
    if args.from_json:
        with open(args.from_json) as f:
            raw = json.load(f)
        name = raw.get("context", {}).get("executable", args.from_json)
    else:
        raw = run_binary(args)
        name = args.binary
    name = re.sub(r".*/", "", name)
    doc = distill(raw, name, args.label)
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"{args.output}: {len(doc['benchmarks'])} rows from {name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
