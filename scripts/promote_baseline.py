#!/usr/bin/env python3
"""Promote a CI-recorded benchmark artifact to a committed baseline.

Usage:
    scripts/promote_baseline.py CANDIDATE.json            # validate + write
    scripts/promote_baseline.py --check-only CANDIDATE.json
    scripts/promote_baseline.py --self-test

The committed BENCH_*.json trajectory files arm scripts/bench_compare.py's
regression gate — but only an HONEST artifact may become a baseline: one
the recording side would not have refused. This container (and any
single-core dev box) cannot produce such an artifact, because
bench_to_json.py refuses debug builds and <2-CPU context outright. The
honest path is therefore:

  1. the CI `perf` job (RelWithDebInfo, multi-core runner) records
     /tmp/BENCH_*.json and uploads them as the `bench-artifacts` artifact;
  2. the same job runs this script with --check-only, so every upload is
     proven promotable at record time;
  3. a maintainer downloads the artifact from a green run on main and runs
     this script on it locally; it re-validates and copies the file over
     the matching committed BENCH_*.json at the repo root, which is then
     committed — arming the >5% throughput / >25% p99 thresholds for
     every PR after it.

Promotability, beyond the schema-2 shape bench_to_json.validate_artifact
pins:

  * not stamped smoke_only (smoke numbers prove wiring, not speed);
  * optimized build: context.library_build_type == "release", and the
    binary's own dcd build stamp (context.build_type) not "debug";
  * context.num_cpus >= 2 (contention sweeps need real parallelism);
  * every row of the matching committed baseline still present, so the
    compare gate's row set never silently shrinks on promotion (the
    committed file is matched by the artifact's `binary` field).

Exit status: 0 = promotable (and written, unless --check-only),
1 = refused (all reasons listed), 2 = bad invocation/missing files.
"""
import argparse
import json
import os
import pathlib
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_to_json  # noqa: E402  (shared schema + validation)

REPO = pathlib.Path(__file__).resolve().parents[1]


def check_candidate(doc: dict, path: str,
                    baseline: dict | None) -> list[str]:
    """All promotability violations (empty list == promotable)."""
    reasons: list[str] = []
    try:
        bench_to_json.validate_artifact(doc, path)
    except bench_to_json.BenchError as e:
        return [str(e)]
    ctx = doc.get("context", {})
    if doc.get("smoke_only"):
        reasons.append("stamped smoke_only: wiring proof, not a baseline")
    lbt = ctx.get("library_build_type")
    if lbt != "release":
        reasons.append(f"library_build_type is {lbt!r}, need 'release'")
    dbt = ctx.get("build_type")
    if dbt == "debug":
        reasons.append("binary's dcd build stamp says debug (NDEBUG unset "
                       "in the code under test)")
    ncpu = ctx.get("num_cpus")
    if not isinstance(ncpu, int) or ncpu < 2:
        reasons.append(f"num_cpus is {ncpu!r}; contention sweeps need a "
                       "multi-core recording host")
    if baseline is not None:
        have = {r.get("name") for r in doc.get("benchmarks", [])}
        missing = sorted(
            {r.get("name") for r in baseline.get("benchmarks", [])} - have)
        if missing:
            reasons.append(
                "rows tracked by the committed baseline are absent from "
                f"the candidate ({len(missing)}): " + ", ".join(missing))
    return reasons


def find_committed(doc: dict) -> pathlib.Path | None:
    """The committed BENCH_*.json recording the same binary, if any."""
    for p in sorted(REPO.glob("BENCH_*.json")):
        try:
            with open(p) as f:
                committed = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if committed.get("binary") == doc.get("binary"):
            return p
    return None


def self_test() -> int:
    def artifact(**over):
        doc = {
            "schema": 2, "binary": "bench_e2_two_ends",
            "smoke_only": False, "date": "2026-08-09T00:00:00Z",
            "label": "seeded",
            "context": {"num_cpus": 4, "mhz_per_cpu": 2100,
                        "library_build_type": "release",
                        "build_type": "release", "compiler": "gcc",
                        "cpu_affinity": "pthread_setaffinity_np",
                        "git_sha": "abc"},
            "benchmarks": [{
                "name": "E2_SameEnd/x/real_time/threads:2", "threads": 2,
                "real_time_ns": 10.0, "cpu_time_ns": 10.0, "iterations": 3,
                "aggregate": "median", "items_per_second": 1e6}],
        }
        ctx_over = over.pop("context", {})
        doc.update(over)
        doc["context"].update(ctx_over)
        return doc

    failures = []
    cases = [
        ("honest artifact", artifact(), None, 0),
        ("smoke-only refused", artifact(smoke_only=True), None, 1),
        ("debug library refused",
         artifact(context={"library_build_type": "debug"}), None, 1),
        ("debug dcd stamp refused",
         artifact(context={"build_type": "debug"}), None, 1),
        ("single-cpu refused", artifact(context={"num_cpus": 1}), None, 1),
        ("row coverage kept", artifact(), artifact(), 0),
        ("shrunken row set refused", artifact(),
         artifact(benchmarks=artifact()["benchmarks"] + [{
             "name": "E2_Gone/x/threads:4", "threads": 4,
             "real_time_ns": 1.0, "cpu_time_ns": 1.0, "iterations": 3,
             "aggregate": "median"}]), 1),
        ("schema drift refused", artifact(schema=1), None, 1),
    ]
    for name, cand, base, want in cases:
        got = 0 if not check_candidate(cand, f"<{name}>", base) else 1
        if got != want:
            failures.append(f"{name}: expected exit {want}, got {got}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK ({len(cases)} seeded cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[1], usage=__doc__.splitlines()[3])
    ap.add_argument("candidate", nargs="?", help="CI-recorded artifact")
    ap.add_argument("--check-only", action="store_true",
                    help="validate promotability without writing anything")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.candidate:
        ap.error("candidate artifact required (or --self-test)")

    try:
        with open(args.candidate) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"promote_baseline: {args.candidate}: {e}", file=sys.stderr)
        return 2

    dest = find_committed(doc) if isinstance(doc, dict) else None
    baseline = None
    if dest is not None:
        with open(dest) as f:
            baseline = json.load(f)

    reasons = check_candidate(doc, args.candidate, baseline)
    if reasons:
        print(f"promote_baseline: REFUSED {args.candidate}:",
              file=sys.stderr)
        for r in reasons:
            print(f"  - {r}", file=sys.stderr)
        return 1

    if args.check_only:
        where = dest.name if dest else "<new baseline file>"
        print(f"promote_baseline: {args.candidate} is promotable "
              f"(would update {where})")
        return 0
    if dest is None:
        print(f"promote_baseline: no committed BENCH_*.json records "
              f"binary {doc.get('binary')!r}; copy the artifact to the "
              "repo root by hand to start a new trajectory",
              file=sys.stderr)
        return 2
    with open(dest, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"promote_baseline: wrote {dest} — commit it to arm "
          "bench_compare's thresholds against this recording")
    return 0


if __name__ == "__main__":
    sys.exit(main())
