#!/usr/bin/env python3
"""Summarise bench_output.txt into the EXPERIMENTS.md comparison tables.

Usage: scripts/summarize_bench.py [bench_output.txt]

Prints, per experiment family (E1..E10 plus the raw BM_ rows of E1), the
benchmark name, time per iteration and the user counters — a quick way to
diff a fresh run against the recorded numbers without re-reading raw
google-benchmark output.
"""
import re
import sys
from collections import defaultdict

ROW = re.compile(
    r"^(?P<name>[A-Za-z0-9_<>/.:+*-]+)\s+(?P<time>[0-9.]+) (?P<unit>ns|us|ms)"
    r"\s+[0-9.]+ (?:ns|us|ms)\s+(?P<iters>\d+)\s*(?P<counters>.*)$")


def family(name: str) -> str:
    if name.startswith("E"):
        return name.split("_")[0]
    return "E1(raw)"


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    groups = defaultdict(list)
    with open(path) as f:
        for line in f:
            m = ROW.match(line.strip())
            if not m:
                continue
            counters = " ".join(
                c for c in m["counters"].split()
                if "=" in c and not c.startswith("items_per_second"))
            groups[family(m["name"])].append(
                (m["name"], f"{m['time']} {m['unit']}", counters))
    for fam in sorted(groups):
        print(f"\n== {fam} ==")
        width = max(len(n) for n, _, _ in groups[fam])
        for name, t, counters in groups[fam]:
            print(f"  {name:<{width}}  {t:>12}  {counters}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
