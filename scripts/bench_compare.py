#!/usr/bin/env python3
"""Gate a fresh benchmark artifact against the committed perf trajectory.

Usage:
    scripts/bench_compare.py BASELINE.json FRESH.json \
        [--max-regression PCT] [--max-p99-inflation PCT]
    scripts/bench_compare.py --self-test

Both inputs are schema-2 artifacts produced by scripts/bench_to_json.py;
each is validated before any numbers are compared. Rows are matched by
(name, aggregate, threads) — the same identity bench_to_json preserves —
with "median" preferred when a row exists under several aggregates
(median is robust to the one-slow-rep outliers that plague shared
runners; mean is not).

Per matched row the gate checks two things:

  * throughput:  fresh items_per_second must not fall more than
    --max-regression percent below baseline (default 5%). Rows without
    items_per_second fall back to real_time_ns inflation with the same
    threshold.
  * tail latency: the fresh lat_p99_ns counter must not exceed baseline
    by more than --max-p99-inflation percent (default 25% — comfortably
    above the ~6% quantization of the histogram buckets, so the gate can
    only trip on a real tail shift). Rows without the counter on either
    side skip this check.

Honesty rules, matching the recording side's refusal contract:

  * fresh artifact stamped smoke_only: REFUSE (exit nonzero). Smoke
    numbers prove wiring, not speed; gating on them would let a debug
    single-core run overwrite the trajectory's meaning.
  * baseline stamped smoke_only: PASS with a notice. The committed
    trajectory predates the first honest recording; the first Release
    multi-core run establishes the real baseline rather than being
    compared against noise.
  * a baseline row missing from the fresh artifact: FAIL. A benchmark
    silently disappearing is how regressions hide; renames must update
    the committed baseline in the same change.
  * fresh rows absent from baseline are reported as notices (new
    coverage) and not gated.

Exit status: 0 = gate passed (or baseline was smoke-only), 1 = gate
failed or inputs invalid. All failures are listed, not just the first.
"""
import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_to_json  # noqa: E402  (shared schema + validation)

DEFAULT_MAX_REGRESSION_PCT = 5.0
DEFAULT_MAX_P99_INFLATION_PCT = 25.0


class CompareError(Exception):
    """Inputs unusable for comparison (validation, smoke-only fresh)."""


def _row_key(row: dict):
    return (row["name"], row.get("aggregate"), row.get("threads"))


def index_rows(doc: dict) -> dict:
    """Map (name, threads) -> preferred row, median > mean > single-rep.

    The aggregate participates in row identity, but the gate compares one
    row per benchmark: medians when the artifact has them, otherwise the
    single-repetition row.
    """
    preference = {"median": 0, "mean": 1, None: 2}
    best = {}
    for row in doc.get("benchmarks", []):
        agg = row.get("aggregate")
        if agg not in preference:
            continue  # stddev and friends are context, not a comparand
        key = (row["name"], row.get("threads"))
        cur = best.get(key)
        if cur is None or preference[agg] < preference[cur.get("aggregate")]:
            best[key] = row
    return best


def load_artifact(path: str) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise CompareError(f"{path}: {e}") from e
    try:
        bench_to_json.validate_artifact(doc, path)
    except bench_to_json.BenchError as e:
        raise CompareError(str(e)) from e
    return doc


def compare(baseline: dict, fresh: dict, max_regression_pct: float,
            max_p99_inflation_pct: float):
    """Returns (failures, notices); empty failures == gate passed."""
    failures = []
    notices = []
    if fresh.get("smoke_only"):
        raise CompareError(
            "fresh artifact is stamped smoke_only — its numbers prove "
            "wiring, not speed; refusing to run the perf gate on them")
    if baseline.get("smoke_only"):
        notices.append(
            "baseline is stamped smoke_only (pre-trajectory wiring check); "
            "nothing honest to compare against — fresh run establishes the "
            "baseline")
        return failures, notices

    base_rows = index_rows(baseline)
    fresh_rows = index_rows(fresh)

    for key, base in sorted(base_rows.items()):
        name, threads = key
        label = f"{name} (threads={threads})"
        new = fresh_rows.get(key)
        if new is None:
            failures.append(f"{label}: present in baseline but missing from "
                            "fresh artifact (renamed or dropped?)")
            continue
        # Throughput gate.
        b_ips = base.get("items_per_second")
        n_ips = new.get("items_per_second")
        if b_ips and n_ips:
            delta_pct = (n_ips - b_ips) / b_ips * 100.0
            if delta_pct < -max_regression_pct:
                failures.append(
                    f"{label}: throughput regressed {-delta_pct:.1f}% "
                    f"({b_ips:.0f} -> {n_ips:.0f} items/s, limit "
                    f"{max_regression_pct:.1f}%)")
        else:
            b_t = base.get("real_time_ns")
            n_t = new.get("real_time_ns")
            if b_t and n_t:
                delta_pct = (n_t - b_t) / b_t * 100.0
                if delta_pct > max_regression_pct:
                    failures.append(
                        f"{label}: real_time inflated {delta_pct:.1f}% "
                        f"({b_t:.0f} -> {n_t:.0f} ns, limit "
                        f"{max_regression_pct:.1f}%)")
        # Tail-latency gate.
        b_p99 = (base.get("counters") or {}).get("lat_p99_ns")
        n_p99 = (new.get("counters") or {}).get("lat_p99_ns")
        if b_p99 and n_p99:
            infl_pct = (n_p99 - b_p99) / b_p99 * 100.0
            if infl_pct > max_p99_inflation_pct:
                failures.append(
                    f"{label}: p99 latency inflated {infl_pct:.1f}% "
                    f"({b_p99:.0f} -> {n_p99:.0f} ns, limit "
                    f"{max_p99_inflation_pct:.1f}%)")

    new_keys = set(fresh_rows) - set(base_rows)
    for name, threads in sorted(new_keys):
        notices.append(f"{name} (threads={threads}): new row, not gated")
    return failures, notices


# --- self-test --------------------------------------------------------------

def _artifact(rows, smoke_only=False):
    return {
        "schema": bench_to_json.SCHEMA_VERSION,
        "binary": "seed",
        "smoke_only": smoke_only,
        "date": "2026-08-05T00:00:00Z",
        "context": {"num_cpus": 4, "mhz_per_cpu": 2100,
                    "library_build_type": "release", "load_avg": [0.1],
                    "build_type": "release", "compiler": "gcc 12.2.0",
                    "cpu_affinity": "pthread_setaffinity_np",
                    "git_sha": None},
        "benchmarks": rows,
    }


def _row(name, threads, ips, p99=None, aggregate=None):
    row = {"name": name, "threads": threads, "real_time_ns": 1e9 / ips,
           "cpu_time_ns": 1e9 / ips, "iterations": 1000,
           "items_per_second": ips}
    if aggregate:
        row["aggregate"] = aggregate
    if p99 is not None:
        row["counters"] = {"lat_p99_ns": p99}
    return row


def self_test() -> int:
    failures = []

    def check(label, got_failures, want_fail):
        if bool(got_failures) != want_fail:
            verdict = "failed" if got_failures else "passed"
            failures.append(f"{label}: gate {verdict} unexpectedly: "
                            f"{got_failures}")

    base = _artifact([
        _row("E2_SameEnd/x/real_time/threads:4", 4, 1_000_000.0, p99=4000.0),
        _row("E2_SameEnd/y/real_time/threads:4", 4, 500_000.0, p99=8000.0),
    ])

    # Identical artifacts pass.
    f, _ = compare(base, base, 5.0, 25.0)
    check("identical", f, want_fail=False)

    # A seeded 10% throughput regression must fail the 5% gate.
    regressed = _artifact([
        _row("E2_SameEnd/x/real_time/threads:4", 4, 900_000.0, p99=4000.0),
        _row("E2_SameEnd/y/real_time/threads:4", 4, 500_000.0, p99=8000.0),
    ])
    f, _ = compare(base, regressed, 5.0, 25.0)
    check("10% regression", f, want_fail=True)

    # An improvement (and small jitter under threshold) passes.
    improved = _artifact([
        _row("E2_SameEnd/x/real_time/threads:4", 4, 1_300_000.0, p99=3000.0),
        _row("E2_SameEnd/y/real_time/threads:4", 4, 490_000.0, p99=8100.0),
    ])
    f, _ = compare(base, improved, 5.0, 25.0)
    check("improvement", f, want_fail=False)

    # p99 inflation alone (throughput flat) must fail.
    tail = _artifact([
        _row("E2_SameEnd/x/real_time/threads:4", 4, 1_000_000.0, p99=6000.0),
        _row("E2_SameEnd/y/real_time/threads:4", 4, 500_000.0, p99=8000.0),
    ])
    f, _ = compare(base, tail, 5.0, 25.0)
    check("p99 inflation", f, want_fail=True)

    # A baseline row missing from fresh must fail.
    dropped = _artifact([
        _row("E2_SameEnd/x/real_time/threads:4", 4, 1_000_000.0, p99=4000.0),
    ])
    f, _ = compare(base, dropped, 5.0, 25.0)
    check("missing row", f, want_fail=True)

    # Extra fresh rows are notices, not failures.
    extra = _artifact(base["benchmarks"] + [
        _row("E2_SameEnd/z/real_time/threads:8", 8, 100_000.0)])
    f, notes = compare(base, extra, 5.0, 25.0)
    check("extra row", f, want_fail=False)
    if not any("new row" in n for n in notes):
        failures.append(f"extra row produced no notice: {notes}")

    # Median preferred over mean when both exist (the mean row carries a
    # seeded regression that must NOT trip the gate).
    agg_base = _artifact([
        _row("E2/x/threads:2", 2, 1_000_000.0, aggregate="median"),
        _row("E2/x/threads:2", 2, 1_000_000.0, aggregate="mean"),
    ])
    agg_fresh = _artifact([
        _row("E2/x/threads:2", 2, 990_000.0, aggregate="median"),
        _row("E2/x/threads:2", 2, 500_000.0, aggregate="mean"),
    ])
    f, _ = compare(agg_base, agg_fresh, 5.0, 25.0)
    check("median preferred", f, want_fail=False)

    # Smoke-only handling: fresh smoke refuses; baseline smoke passes
    # with a notice and no row checks.
    try:
        compare(base, _artifact(base["benchmarks"], smoke_only=True),
                5.0, 25.0)
        failures.append("fresh smoke_only artifact was accepted")
    except CompareError:
        pass
    f, notes = compare(_artifact([], smoke_only=True) | {"benchmarks": [
        _row("gone/threads:2", 2, 1.0)]}, base, 5.0, 25.0)
    check("smoke baseline", f, want_fail=False)
    if not any("smoke_only" in n for n in notes):
        failures.append(f"smoke baseline produced no notice: {notes}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print("self-test OK (bench_compare gate semantics)")
    return 0


def main() -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("baseline", nargs="?",
                   help="committed BENCH_*.json to gate against")
    p.add_argument("fresh", nargs="?",
                   help="freshly recorded artifact to check")
    p.add_argument("--max-regression", type=float,
                   default=DEFAULT_MAX_REGRESSION_PCT, metavar="PCT",
                   help="max tolerated throughput drop per row "
                        "(default %(default)s%%)")
    p.add_argument("--max-p99-inflation", type=float,
                   default=DEFAULT_MAX_P99_INFLATION_PCT, metavar="PCT",
                   help="max tolerated lat_p99_ns growth per row "
                        "(default %(default)s%%)")
    p.add_argument("--self-test", action="store_true",
                   help="exercise the gate against seeded artifacts")
    args = p.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline or not args.fresh:
        p.error("BASELINE and FRESH artifacts are required")
    try:
        baseline = load_artifact(args.baseline)
        fresh = load_artifact(args.fresh)
        failures, notices = compare(baseline, fresh, args.max_regression,
                                    args.max_p99_inflation)
    except CompareError as e:
        print(f"bench_compare: error: {e}", file=sys.stderr)
        return 1
    for n in notices:
        print(f"bench_compare: note: {n}")
    if failures:
        for f in failures:
            print(f"bench_compare: FAIL: {f}", file=sys.stderr)
        print(f"bench_compare: {len(failures)} gate failure(s) against "
              f"{args.baseline}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK — {args.fresh} holds the line against "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
